open Jt_isa

type block = { bb_addr : int; insns : (int * Insn.t * int) array }

(* What a piece of instrumentation does to shadow state, as far as the
   trace-spine elision pass is concerned.  [M_check]/[M_unpoison] carry
   the syntactic address key of the access they guard; [M_shadow_write]
   marks a poisoning write (a barrier: no earlier check survives it);
   [M_opaque] is anything the pass cannot reason about — an opaque meta
   with an action is treated as a conservative barrier, one without an
   action (pure cost) is transparent.

   Contract for [M_check]: the meta's action must be a pure, read-only
   shadow check of the keyed address range (reporting aside, no state
   changes).  The trace pass relies on this in both directions — it
   drops such actions when a dominating check witnesses them, and the
   induction-range guard *re-executes* them with the key's index
   register temporarily rebound to an endpoint trip value, turning the
   per-iteration check into two endpoint checks at streak onset. *)
type meta_kind =
  | M_opaque
  | M_check of Jt_analysis.Avail.Key.t
  | M_unpoison of Jt_analysis.Avail.Key.t
  | M_shadow_write

type meta = {
  m_cost : int;
  m_action : (Jt_vm.Vm.t -> unit) option;
  m_kind : meta_kind;
}

type plan = meta list array

let no_plan b = Array.make (Array.length b.insns) []

type provenance = Static_rules | Dynamic_only

type client = {
  cl_name : string;
  cl_on_block :
    Jt_vm.Vm.t -> block -> provenance -> rules_at:(int -> Jt_rules.Rules.t list) -> plan;
}

type profile = {
  p_name : string;
  p_translate_block : int;
  p_translate_insn : int;
  p_indirect : int;
  p_ibl_hit : int;
  p_per_block : int;
}

let dynamorio =
  {
    p_name = "dynamorio";
    p_translate_block = Jt_vm.Cost.dbt_translate_block;
    p_translate_insn = Jt_vm.Cost.dbt_translate_insn;
    p_indirect = Jt_vm.Cost.dbt_indirect_lookup;
    p_ibl_hit = Jt_vm.Cost.dbt_ibl_hit;
    p_per_block = 0;
  }

(* Lockdown's libdetox keeps its own constants: an IBL hit there costs
   the same as its ordinary indirect check, so enabling the IBL would
   change nothing even if the baseline didn't opt out. *)
let lightweight =
  {
    p_name = "lightweight";
    p_translate_block = 30;
    p_translate_insn = 6;
    p_indirect = Jt_vm.Cost.lockdown_indirect;
    p_ibl_hit = Jt_vm.Cost.lockdown_indirect;
    p_per_block = Jt_vm.Cost.lockdown_per_block;
  }

type stats = {
  mutable st_blocks_static : int;
  mutable st_blocks_dynamic : int;
  mutable st_block_execs : int;
  mutable st_indirects : int;
  mutable st_rules_applied : int;
  mutable st_chain_hits : int;
  mutable st_dispatch_entries : int;
  mutable st_ibl_hits : int;
  mutable st_ibl_misses : int;
  mutable st_traces_built : int;
  mutable st_trace_execs : int;
  mutable st_trace_interior : int;
  mutable st_decode_faults : int;
  mutable st_claim_checked_drops : int;
}

(* The trace-level induction guard (dynamic SCEV).  When a trace is the
   body of a counted loop — head pattern [cmp ivar, bound; jcc {>=,>}],
   a single unit-increment definition of [ivar], a bound that is
   spine-invariant — every check whose key is affine in [ivar] over a
   spine-invariant base can be hoisted out of the steady-state plans and
   replaced by one pair of endpoint checks run at streak onset, when the
   remaining trip range [i0, last] is known from the live register file.
   This is the static SCEV range check's runtime twin: the static pass
   refuses register-held bounds (it cannot prove them stable to the
   preheader), but along a streak the bound register is *observed*
   stable — it is never written on the spine and nothing else runs.
   [ig_checks] pairs each hoisted check meta with the number of [ivar]
   increments that precede it on the spine (its index offset). *)
type ind_bound = Ib_imm of int | Ib_reg of Reg.t

type ind_guard = {
  ig_ivar : Reg.t;
  ig_bound : ind_bound;
  ig_incl : bool;  (* exit on [>]: the last executed trip value is bound *)
  ig_checks : (meta * int) list;
}

(* Per-trace elision overlay, computed once at trace-build time by the
   spine availability analysis.  [ov_plans] replaces the constituents'
   own plans on a cold entry of the trace; [ov_plans_streak] is the
   steady-state variant used when the trace re-enters its own head
   immediately after a completed execution (so checks made available by
   the previous trip — loop-invariant ones — are elided too).  The
   constituents' [cb_plan]s are never modified: a side exit, teardown or
   ordinary block execution structurally restores every check.  The
   [ov_*] count arrays record, per constituent position, how many checks
   each plan variant dropped, for the runtime counters. *)
type overlay = {
  ov_plans : plan array;
  ov_plans_streak : plan array;
  ov_ind : ind_guard option;
      (* endpoint guard justifying the streak plans' "trace-ind" drops;
         executed once when a streak begins *)
  ov_dom : int array;  (* base-plan drops: dominated within the trace *)
  ov_canary : int array;  (* base-plan drops: redundant canary unpoison *)
  ov_s_dom : int array;  (* streak-plan drops with a same-trip witness *)
  ov_s_canary : int array;
  ov_s_streak : int array;  (* streak-only drops (previous-trip witness) *)
  ov_s_ind : int array;  (* streak-only drops hoisted to the onset guard *)
  ov_decisions : (int * string * int) list;
      (* (insn addr, reason, witness addr), for tracing and --facts *)
}

(* A code-cache entry.  Blocks ending in a direct transfer record their
   static successor address(es); once a successor is itself translated,
   the dispatcher installs a chain link so the next execution follows the
   pointer instead of re-probing the hash table.  [cb_valid] is the chain
   severing mechanism: invalidation flips it and every link into a dead
   block is dropped lazily the first time it is followed. *)
type cached = {
  cb : block;
  cb_plan : plan;
  cb_indirect_end : bool;
  cb_end : int;  (* exclusive end of the byte span; bb_addr+1 if empty *)
  cb_succ_taken : int;  (* direct Jmp/Jcc/Call target, -1 if none *)
  cb_succ_fall : int;  (* fallthrough address, -1 if none *)
  mutable cb_link_taken : cached option;
  mutable cb_link_fall : cached option;
  mutable cb_valid : bool;
  (* Per-site indirect-branch inline cache: for a block ending in an
     indirect transfer, the last resolved target plus a small
     associative table of recent targets, probed before the dispatcher.
     Entries are severed lazily through [cb_valid], like chain links. *)
  mutable cb_ibl_last : cached option;
  cb_ibl : cached option array;
  mutable cb_ibl_rr : int;  (* round-robin victim when all ways are live *)
  mutable cb_hot : int;  (* dispatcher-level entries, for trace heads *)
  cb_origin : Jt_trace.Trace.origin;  (* static rules vs dynamic discovery *)
  (* Back-pointers to every live trace this block is a constituent of,
     so invalidation tears dependent traces down eagerly (and the live
     count stays O(1) to read). *)
  mutable cb_traces : trace list;
}

(* A NET-style superblock trace: the tail of blocks that actually
   executed after a hot head, stitched so the common path re-enters the
   dispatcher once per trip instead of once per block.  Constituents are
   ordinary code-cache entries, so PR 1's page-bucketed range
   invalidation reaches them without knowing about traces: a trace is
   alive only while every constituent still is: invalidating any
   constituent eagerly drops the trace through the block's [cb_traces]
   back-pointers, and execution still re-checks each constituent before
   entering it (a flush mid-trace side-exits). *)
and trace = {
  tr_head : int;
  tr_blocks : cached array;
  mutable tr_valid : bool;
  tr_overlay : overlay option;  (* trace-level elision plans, if any *)
}

type t = {
  vm : Jt_vm.Vm.t;
  profile : profile;
  client : client option;
  chain : bool;
  ibl : bool;
  trace : bool;
  trace_elide : bool;
  cache : (int, cached) Hashtbl.t;
  (* 4KiB-page index over [cache]: every block is registered under each
     page its byte span overlaps, so a range invalidation visits only the
     affected pages instead of folding over the whole code cache. *)
  pages : (int, cached list ref) Hashtbl.t;
  (* Per-module rewrite-rule hash tables (Figure 5), keyed by the owning
     module's load order and reached through the loader's interval-indexed
     [module_at] instead of a linear scan. *)
  tables : (int, Jt_rules.Rules.Table.t) Hashtbl.t;
  traces : (int, trace) Hashtbl.t;
  mutable n_traces_live : int;
      (* incremental live-trace count; [traces_live_scan] is the full
         recount it must always agree with (asserted after every run) *)
  mutable recording : (int * cached list) option;
      (* trace being recorded: head address, constituents in reverse *)
  (* Static claim partition read from the stored IR's aux tables at
     module load, keyed by *runtime* instruction address (load-base
     adjusted like the rule tables).  Consulted by the trace overlay
     planner purely for accounting: a drop at a [Claims.checked] address
     is redundancy the static elision passes could not prove. *)
  claims : (int, int) Hashtbl.t;
  stats : stats;
}

let max_block_insns = 256

let page_shift = 12

(* Trace-formation constants (NET: "next-executing tail").  A head is a
   block entered [hot_threshold] times through the dispatcher-level
   paths; the trace then records up to [max_trace_len] blocks of the
   execution that follows. *)
let hot_threshold = 32

let max_trace_len = 16

let ibl_ways = 4

let index_add t (c : cached) =
  for p = c.cb.bb_addr asr page_shift to (c.cb_end - 1) asr page_shift do
    let b =
      match Hashtbl.find_opt t.pages p with
      | Some b -> b
      | None ->
        let b = ref [] in
        Hashtbl.replace t.pages p b;
        b
    in
    b := c :: !b
  done

let index_remove t (c : cached) =
  for p = c.cb.bb_addr asr page_shift to (c.cb_end - 1) asr page_shift do
    match Hashtbl.find_opt t.pages p with
    | Some b -> b := List.filter (fun o -> o != c) !b
    | None -> ()
  done

(* Tear a trace down: mark it dead, keep the live count in step, unhook
   it from its constituents' back-pointer lists and drop it from the
   head table.  Idempotent — the eager path (invalidate) and the lazy
   path (a side exit noticing a dead constituent) may both reach the
   same trace. *)
let drop_trace t tr =
  if tr.tr_valid then begin
    tr.tr_valid <- false;
    t.n_traces_live <- t.n_traces_live - 1;
    Array.iter
      (fun (c : cached) ->
        c.cb_traces <- List.filter (fun o -> o != tr) c.cb_traces)
      tr.tr_blocks;
    if Jt_trace.Trace.is_enabled () then
      Jt_trace.Trace.emit (Jt_trace.Trace.Trace_teardown { head = tr.tr_head });
    match Hashtbl.find_opt t.traces tr.tr_head with
    | Some cur when cur == tr -> Hashtbl.remove t.traces tr.tr_head
    | Some _ | None -> ()
  end

let invalidate t (c : cached) =
  c.cb_valid <- false;
  (* any trace built over this block dies with it — eagerly, so that a
     severed trace can never be entered with its elision overlay active
     and so the live count stays exact *)
  (let trs = c.cb_traces in
   c.cb_traces <- [];
   List.iter (fun tr -> drop_trace t tr) trs);
  if Jt_trace.Trace.is_enabled () then begin
    let sever = function
      | Some (o : cached) ->
        Jt_trace.Trace.emit
          (Jt_trace.Trace.Chain_sever
             { from_pc = c.cb.bb_addr; to_pc = o.cb.bb_addr })
      | None -> ()
    in
    sever c.cb_link_taken;
    sever c.cb_link_fall
  end;
  c.cb_link_taken <- None;
  c.cb_link_fall <- None;
  (* Inline-cache entries into the dead block are severed lazily by the
     probe's [cb_valid] check; the dead block's own site cache is cleared
     eagerly so it stops pinning other blocks. *)
  c.cb_ibl_last <- None;
  Array.fill c.cb_ibl 0 (Array.length c.cb_ibl) None;
  (match Hashtbl.find_opt t.cache c.cb.bb_addr with
  | Some cur when cur == c -> Hashtbl.remove t.cache c.cb.bb_addr
  | Some _ | None -> ());
  index_remove t c

(* Invalidate every cached block whose byte span overlaps the flushed
   range; empty (decode-faulting) blocks count as length 1 so a flush
   that covers their address retires them too. *)
let flush_blocks t start len =
  if len > 0 then begin
    let m = Jt_metrics.Metrics.Counters.current () in
    for p = start asr page_shift to (start + len - 1) asr page_shift do
      match Hashtbl.find_opt t.pages p with
      | None -> ()
      | Some b ->
        let doomed =
          List.filter
            (fun (c : cached) ->
              m.c_flush_visits <- m.c_flush_visits + 1;
              c.cb_valid && c.cb_end > start && c.cb.bb_addr < start + len)
            !b
        in
        List.iter
          (fun c ->
            m.c_flush_drops <- m.c_flush_drops + 1;
            invalidate t c)
          doomed
    done
  end

let claims_prefix = "claims/v1:"

let is_claims_key k =
  String.length k >= String.length claims_prefix
  && String.sub k 0 (String.length claims_prefix) = claims_prefix

let create ~vm ?(profile = dynamorio) ?client ?(chain = true) ?(ibl = true)
    ?(trace = true) ?(trace_elide = true) ?(rules_for = fun _ -> None)
    ?(ir_for = fun _ -> None) () =
  let t =
    {
      vm;
      profile;
      client;
      chain;
      ibl;
      trace;
      trace_elide;
      cache = Hashtbl.create 4096;
      pages = Hashtbl.create 256;
      tables = Hashtbl.create 8;
      traces = Hashtbl.create 64;
      n_traces_live = 0;
      recording = None;
      claims = Hashtbl.create 256;
      stats =
        {
          st_blocks_static = 0;
          st_blocks_dynamic = 0;
          st_block_execs = 0;
          st_indirects = 0;
          st_rules_applied = 0;
          st_chain_hits = 0;
          st_dispatch_entries = 0;
          st_ibl_hits = 0;
          st_ibl_misses = 0;
          st_traces_built = 0;
          st_trace_execs = 0;
          st_trace_interior = 0;
          st_decode_faults = 0;
          st_claim_checked_drops = 0;
        };
    }
  in
  (* (1) in Figure 4: when a module is loaded, read its rewrite rules into
     a fresh hash table, adjusting addresses by the load base for PIC. *)
  Jt_loader.Loader.on_load vm.Jt_vm.Vm.loader (fun l ->
      (match rules_for l.Jt_loader.Loader.lmod.Jt_obj.Objfile.name with
      | None -> ()
      | Some file ->
        let table =
          Jt_rules.Rules.Table.load file ~base:l.Jt_loader.Loader.base
            ~pic:(Jt_obj.Objfile.is_pic l.Jt_loader.Loader.lmod)
        in
        Hashtbl.replace t.tables l.Jt_loader.Loader.load_order table);
      (* The overlay planner's view of the static claim partition, from
         the module's stored IR.  A malformed aux table is dropped with a
         warning — claims only feed accounting, never behavior. *)
      match ir_for l.Jt_loader.Loader.lmod.Jt_obj.Objfile.name with
      | None -> ()
      | Some ir ->
        let base = l.Jt_loader.Loader.base in
        let pic = Jt_obj.Objfile.is_pic l.Jt_loader.Loader.lmod in
        let adjust a = if pic then a + base else a in
        List.iter
          (fun (key, payload) ->
            if is_claims_key key then
              match Jt_ir.Ir.Claims.decode payload with
              | fns ->
                List.iter
                  (fun (fc : Jt_ir.Ir.Claims.fn_claims) ->
                    List.iter
                      (fun (addr, code, _witness) ->
                        Hashtbl.replace t.claims (adjust addr) code)
                      fc.fc_claims)
                  fns
              | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
              | exception e ->
                Printf.eprintf
                  "janitizer: warning: ignoring malformed claims table %s \
                   for %s (%s)\n%!"
                  key l.Jt_loader.Loader.lmod.Jt_obj.Objfile.name
                  (Printexc.to_string e))
          ir.Jt_ir.Ir.ir_aux);
  (* Cache-flush syscalls (JIT regeneration) invalidate affected blocks. *)
  Jt_vm.Vm.on_cache_flush vm (fun start len -> flush_blocks t start len);
  t

let table_for t addr =
  match Jt_loader.Loader.module_at t.vm.Jt_vm.Vm.loader addr with
  | Some l -> Hashtbl.find_opt t.tables l.Jt_loader.Loader.load_order
  | None -> None

let is_indirect_end (b : block) =
  if Array.length b.insns = 0 then false
  else
    let _, i, _ = b.insns.(Array.length b.insns - 1) in
    match Insn.cti_kind i with
    | Some (Insn.Cti_jmp_ind | Insn.Cti_call_ind | Insn.Cti_ret) -> true
    | Some (Insn.Cti_jmp _ | Insn.Cti_jcc _ | Insn.Cti_call _ | Insn.Cti_halt | Insn.Cti_syscall)
    | None ->
      false

(* Build the dynamic basic block starting at [addr]: decode until a
   control-transfer instruction (step (2) in Figure 4). *)
let build_block t addr =
  let insns = ref [] in
  let n = ref 0 in
  let pc = ref addr in
  let stop = ref false in
  while not !stop do
    match Jt_vm.Vm.fetch t.vm !pc with
    | None -> stop := true
    | Some (i, len) ->
      insns := (!pc, i, len) :: !insns;
      incr n;
      pc := !pc + len;
      if Insn.ends_block i || !n >= max_block_insns then stop := true
  done;
  { bb_addr = addr; insns = Array.of_list (List.rev !insns) }

(* Static successors of a block, for chaining: a block ending in a direct
   Jmp/Call has one known successor, a Jcc has two (target and
   fallthrough), and a block cut by the size limit (or by a non-CTI such
   as a syscall) falls through.  Indirect transfers, returns and halts
   have none. *)
let successors (b : block) =
  if Array.length b.insns = 0 then (-1, -1)
  else
    let la, i, ll = b.insns.(Array.length b.insns - 1) in
    match Insn.cti_kind i with
    | Some (Insn.Cti_jmp tgt) -> (tgt, -1)
    | Some (Insn.Cti_jcc (_, tgt)) -> (tgt, la + ll)
    | Some (Insn.Cti_call tgt) -> (tgt, -1)
    | Some (Insn.Cti_jmp_ind | Insn.Cti_call_ind | Insn.Cti_ret | Insn.Cti_halt)
      ->
      (-1, -1)
    | Some Insn.Cti_syscall | None -> (-1, la + ll)

(* Translate: classify the block against the rule tables ((3a)/(3b) in
   Figure 4) and let the client build its instrumentation plan. *)
let translate t addr =
  let b = build_block t addr in
  let translate_cycles =
    t.profile.p_translate_block
    + (t.profile.p_translate_insn * Array.length b.insns)
  in
  t.vm.Jt_vm.Vm.cycles <- t.vm.Jt_vm.Vm.cycles + translate_cycles;
  if Jt_trace.Trace.is_enabled () then
    Jt_trace.Trace.phase_add_cycles Jt_trace.Trace.Rewrite translate_cycles;
  let table = table_for t addr in
  let static_hit =
    match table with
    | Some tbl -> Jt_rules.Rules.Table.bb_seen tbl addr
    | None -> false
  in
  if static_hit then t.stats.st_blocks_static <- t.stats.st_blocks_static + 1
  else t.stats.st_blocks_dynamic <- t.stats.st_blocks_dynamic + 1;
  let plan =
    match t.client with
    | None -> no_plan b
    | Some cl ->
      let rules_at =
        match (static_hit, table) with
        | true, Some tbl ->
          fun a ->
            let rs = Jt_rules.Rules.Table.at_insn tbl a in
            t.stats.st_rules_applied <- t.stats.st_rules_applied + List.length rs;
            rs
        | _ -> fun _ -> []
      in
      cl.cl_on_block t.vm b
        (if static_hit then Static_rules else Dynamic_only)
        ~rules_at
  in
  let cb_end =
    if Array.length b.insns = 0 then addr + 1
    else
      let la, _, ll = b.insns.(Array.length b.insns - 1) in
      la + ll
  in
  let succ_taken, succ_fall = successors b in
  let cached =
    {
      cb = b;
      cb_plan = plan;
      cb_indirect_end = is_indirect_end b;
      cb_end;
      cb_succ_taken = succ_taken;
      cb_succ_fall = succ_fall;
      cb_link_taken = None;
      cb_link_fall = None;
      cb_valid = true;
      cb_ibl_last = None;
      cb_ibl = Array.make ibl_ways None;
      cb_ibl_rr = 0;
      cb_hot = 0;
      cb_origin =
        (if static_hit then Jt_trace.Trace.Static else Jt_trace.Trace.Dynamic);
      cb_traces = [];
    }
  in
  if Jt_trace.Trace.is_enabled () then
    Jt_trace.Trace.emit
      (Jt_trace.Trace.Block_translate
         { pc = addr; insns = Array.length b.insns; origin = cached.cb_origin });
  (match Hashtbl.find_opt t.cache addr with
  | Some old -> invalidate t old
  | None -> ());
  Hashtbl.replace t.cache addr cached;
  index_add t cached;
  cached

(* ---- per-site indirect-branch inline caches ---- *)

let ibl_probe (p : cached) pc =
  match p.cb_ibl_last with
  | Some c when c.cb_valid && c.cb.bb_addr = pc -> Some c
  | _ ->
    let n = Array.length p.cb_ibl in
    let rec scan i =
      if i >= n then None
      else
        match p.cb_ibl.(i) with
        | Some c when c.cb_valid && c.cb.bb_addr = pc ->
          p.cb_ibl_last <- Some c;
          Some c
        | Some _ | None -> scan (i + 1)
    in
    scan 0

let ibl_install (p : cached) (c : cached) =
  p.cb_ibl_last <- Some c;
  let n = Array.length p.cb_ibl in
  (* reuse a dead or duplicate way if one exists, else evict round-robin *)
  let rec free i =
    if i >= n then None
    else
      match p.cb_ibl.(i) with
      | Some o when o.cb_valid && o != c -> free (i + 1)
      | Some _ | None -> Some i
  in
  let slot =
    match free 0 with
    | Some i -> i
    | None ->
      let v = p.cb_ibl_rr in
      p.cb_ibl_rr <- (v + 1) mod n;
      v
  in
  p.cb_ibl.(slot) <- Some c

(* ---- block / trace execution ---- *)

(* Run one translated block's instructions (with their instrumentation
   plan).  The fuel budget is checked before every instruction, not just
   between blocks, so Out_of_fuel fires within one instruction of the
   budget even inside a maximal 256-instruction block or a long chain. *)
let exec_insns t ~budget ~(plan : plan) (c : cached) =
  let vm = t.vm in
  let n = Array.length c.cb.insns in
  let k = ref 0 in
  while !k < n && vm.Jt_vm.Vm.status = Jt_vm.Vm.Running do
    if vm.Jt_vm.Vm.icount >= budget then
      vm.Jt_vm.Vm.status <- Jt_vm.Vm.Fault Jt_vm.Vm.Out_of_fuel
    else begin
      let at, i, len = c.cb.insns.(!k) in
      List.iter
        (fun m ->
          Jt_vm.Vm.charge vm m.m_cost;
          match m.m_action with Some f -> f vm | None -> ())
        plan.(!k);
      Jt_vm.Vm.step_decoded vm ~at i len;
      incr k
    end
  done

(* With the IBL on, the cost of an ending indirect transfer depends on
   the probe outcome and is charged by the dispatch loop (or by the
   trace executor for in-trace transitions); with it off the flat
   [p_indirect] charge lands here, as before. *)
let exec_block t ~budget (c : cached) =
  let vm = t.vm in
  t.stats.st_block_execs <- t.stats.st_block_execs + 1;
  if Jt_trace.Trace.is_enabled () then begin
    Jt_trace.Trace.set_exec_origin c.cb_origin;
    Jt_trace.Trace.emit (Jt_trace.Trace.Block_exec { pc = c.cb.bb_addr })
  end;
  if t.profile.p_per_block > 0 then Jt_vm.Vm.charge vm t.profile.p_per_block;
  exec_insns t ~budget ~plan:c.cb_plan c;
  if c.cb_indirect_end && vm.Jt_vm.Vm.status = Jt_vm.Vm.Running then begin
    t.stats.st_indirects <- t.stats.st_indirects + 1;
    if not t.ibl then Jt_vm.Vm.charge vm t.profile.p_indirect
  end

(* Eager teardown maintains the invariant "[tr_valid] implies every
   constituent is valid", so liveness is a field read on the dispatch
   hot path instead of an O(len) scan. *)
let trace_alive tr = tr.tr_valid

let traces_live t = t.n_traces_live

(* The pre-invariant recount — O(traces · len) — kept as the debug
   oracle the incremental count is asserted against after every run. *)
let traces_live_scan t =
  Hashtbl.fold
    (fun _ tr n ->
      if tr.tr_valid && Array.for_all (fun c -> c.cb_valid) tr.tr_blocks then
        n + 1
      else n)
    t.traces 0

(* Execute a superblock trace.  Constituents run back to back with their
   instrumentation plans; after each one, control stays inside the trace
   only if the machine's next PC really is the next constituent's head
   (so a Jcc going the other way, an indirect transfer to a new target,
   or a constituent invalidated by a flush mid-trace all side-exit to
   the dispatcher, which re-resolves from scratch).  An in-trace
   indirect transition pays only the inlined-comparison price
   [p_ibl_hit]; the final block's exit is resolved by the dispatcher
   exactly like a plain block's.  [streak] selects the steady-state
   elision plans — legal only when this very trace completed head to
   tail on the immediately preceding dispatch, so the availability
   carried across the back-edge is real.  [streak_onset] marks the first
   streak-mode execution of a consecutive run: that is when the
   induction guard (if any) pays for the hoisted per-iteration checks
   with its one pair of endpoint checks.  Returns the last constituent
   that executed (for the dispatcher's chain/IBL bookkeeping) and
   whether the trace ran to completion (to arm the next streak). *)

(* Run the endpoint checks that justify a trace's "trace-ind" drops.
   The remaining trip range is read off the live register file: [i0] is
   the induction register's current value (control is at the loop head),
   [last] comes from the bound operand.  Each hoisted check's own action
   is re-executed with the induction register rebound to the endpoint
   trip values — legal by the [M_check] purity contract — so the guard
   checks exactly the first and last addresses the elided per-iteration
   checks would have touched.  Interior trips are covered by the same
   heap-object contiguity argument as the static SCEV range check: with
   redzones only at object boundaries, a poisoned byte between two clean
   endpoints of a unit-stride walk cannot exist.  The guard charges each
   check's inline cost twice; the per-iteration copies it replaces
   charge nothing while elided. *)
let run_ind_guard vm (ig : ind_guard) =
  let i0 = Word.to_signed (Jt_vm.Vm.get vm ig.ig_ivar) in
  let bound =
    match ig.ig_bound with
    | Ib_imm v -> v
    | Ib_reg r -> Word.to_signed (Jt_vm.Vm.get vm r)
  in
  let last = if ig.ig_incl then bound else bound - 1 in
  if last >= i0 then begin
    let saved = Jt_vm.Vm.get vm ig.ig_ivar in
    List.iter
      (fun ((m : meta), off) ->
        match m.m_action with
        | None -> ()
        | Some act ->
          Jt_vm.Vm.set vm ig.ig_ivar (Word.of_int (i0 + off));
          act vm;
          Jt_vm.Vm.set vm ig.ig_ivar (Word.of_int (last + off));
          act vm;
          Jt_vm.Vm.charge vm (2 * m.m_cost))
      ig.ig_checks;
    Jt_vm.Vm.set vm ig.ig_ivar saved
  end

let exec_trace t ~budget ~streak ~streak_onset (tr : trace) =
  let vm = t.vm in
  let s = t.stats in
  s.st_trace_execs <- s.st_trace_execs + 1;
  let m = Jt_metrics.Metrics.Counters.current () in
  m.c_trace_execs <- m.c_trace_execs + 1;
  (if streak && streak_onset then
     match tr.tr_overlay with
     | Some { ov_ind = Some ig; _ } -> run_ind_guard vm ig
     | Some _ | None -> ());
  if t.profile.p_per_block > 0 then Jt_vm.Vm.charge vm t.profile.p_per_block;
  let n = Array.length tr.tr_blocks in
  let i = ref 0 in
  let last = ref tr.tr_blocks.(0) in
  let continue_ = ref true in
  while !continue_ do
    let c = tr.tr_blocks.(!i) in
    last := c;
    s.st_block_execs <- s.st_block_execs + 1;
    if !i > 0 then s.st_trace_interior <- s.st_trace_interior + 1;
    if Jt_trace.Trace.is_enabled () then begin
      Jt_trace.Trace.set_exec_origin c.cb_origin;
      Jt_trace.Trace.emit (Jt_trace.Trace.Block_exec { pc = c.cb.bb_addr })
    end;
    let plan =
      match tr.tr_overlay with
      | None -> c.cb_plan
      | Some ov ->
        if streak then begin
          m.c_san_trace_elide_dom <- m.c_san_trace_elide_dom + ov.ov_s_dom.(!i);
          m.c_san_trace_elide_canary <-
            m.c_san_trace_elide_canary + ov.ov_s_canary.(!i);
          m.c_san_trace_elide_streak <-
            m.c_san_trace_elide_streak + ov.ov_s_streak.(!i);
          m.c_san_trace_elide_ind <- m.c_san_trace_elide_ind + ov.ov_s_ind.(!i);
          ov.ov_plans_streak.(!i)
        end
        else begin
          m.c_san_trace_elide_dom <- m.c_san_trace_elide_dom + ov.ov_dom.(!i);
          m.c_san_trace_elide_canary <-
            m.c_san_trace_elide_canary + ov.ov_canary.(!i);
          ov.ov_plans.(!i)
        end
    in
    exec_insns t ~budget ~plan c;
    let running = vm.Jt_vm.Vm.status = Jt_vm.Vm.Running in
    if c.cb_indirect_end && running then s.st_indirects <- s.st_indirects + 1;
    if (not running) || !i = n - 1 then begin
      (if c.cb_indirect_end && running && not t.ibl then
         Jt_vm.Vm.charge vm t.profile.p_indirect);
      continue_ := false
    end
    else begin
      let next = tr.tr_blocks.(!i + 1) in
      if next.cb_valid && vm.Jt_vm.Vm.pc = next.cb.bb_addr then begin
        (if c.cb_indirect_end then
           Jt_vm.Vm.charge vm
             (if t.ibl then t.profile.p_ibl_hit else t.profile.p_indirect));
        incr i
      end
      else begin
        (if c.cb_indirect_end && not t.ibl then
           Jt_vm.Vm.charge vm t.profile.p_indirect);
        (* a dead constituent means a flush hit the trace: tear it down
           (the eager path normally already has) so the head can re-form
           over the regenerated code; the side exit re-enters the
           dispatcher, where the constituents' own untouched [cb_plan]s
           govern — every trace-elided check is back in force *)
        if not next.cb_valid then drop_trace t tr;
        continue_ := false
      end
    end
  done;
  let completed =
    !i = n - 1 && vm.Jt_vm.Vm.status = Jt_vm.Vm.Running && tr.tr_valid
  in
  (!last, completed)

(* ---- trace-spine elision ----

   A trace is a single-entry straight line, so the JASan availability
   must-analysis becomes exact along it: a check whose address key is
   already available when control reaches it (no barrier, no redefinition
   of the key's registers since an earlier identical check) is redundant
   for this path, across constituent-block boundaries the per-block
   static pass cannot see.  The analysis runs once at trace-build time
   over the flattened spine; its product is an overlay of thinned plans,
   never a mutation of the constituents' own [cb_plan]s. *)

module KS = Jt_analysis.Avail.Set

(* Pair lattice: (keys with an available check, keys with an available
   unpoison).  Both are must-sets; join is pointwise intersection. *)
module Avail2 = struct
  type t = KS.t * KS.t

  let equal (c1, u1) (c2, u2) = KS.equal c1 c2 && KS.equal u1 u2
  let join (c1, u1) (c2, u2) = (KS.inter c1 c2, KS.inter u1 u2)
  let widen = join
end

module Spine_solver = Jt_analysis.Dataflow.Make (Avail2)

type spine_el = {
  se_bi : int;  (* constituent position within the trace *)
  se_k : int;  (* instruction slot within the constituent *)
  se_addr : int;
  se_insn : Insn.t;
  se_metas : meta list;
}

(* A check gens check-availability; an unpoison gens unpoison-
   availability (it only widens what is addressable, so it is not a
   barrier for checks); a poisoning shadow write clears both, as does
   any opaque action the pass cannot see through. *)
let meta_transfer m ((chk, unp) as st) =
  match m.m_kind with
  | M_check k -> (KS.add k chk, unp)
  | M_unpoison k -> (chk, KS.add k unp)
  | M_shadow_write -> (KS.empty, KS.empty)
  | M_opaque -> (
    match m.m_action with Some _ -> (KS.empty, KS.empty) | None -> st)

let spine_transfer el st =
  let chk, unp =
    List.fold_left (fun st m -> meta_transfer m st) st el.se_metas
  in
  ( Jt_analysis.Avail.insn_transfer el.se_insn chk,
    Jt_analysis.Avail.insn_transfer el.se_insn unp )

(* One decision walk from a given entry state: which metas may be
   dropped, each with the earlier site that witnesses it.  The witness
   tables map an available key to the address of the meta that made it
   available; passing a walk's final tables into the next walk carries
   witnesses across the back-edge for the streak variant. *)
let decide_spine ~entry ~wit_chk ~wit_unp spine =
  let drops = Hashtbl.create 16 in
  let st = ref entry in
  Array.iter
    (fun el ->
      let chk = ref (fst !st) and unp = ref (snd !st) in
      List.iteri
        (fun j (m : meta) ->
          match m.m_kind with
          | M_check k ->
            if KS.mem k !chk then
              Hashtbl.replace drops (el.se_bi, el.se_k, j)
                ( "trace-dom",
                  Option.value ~default:0 (Hashtbl.find_opt wit_chk k),
                  el.se_addr )
            else begin
              Hashtbl.replace wit_chk k el.se_addr;
              chk := KS.add k !chk
            end
          | M_unpoison k ->
            if KS.mem k !unp then
              Hashtbl.replace drops (el.se_bi, el.se_k, j)
                ( "trace-canary",
                  Option.value ~default:0 (Hashtbl.find_opt wit_unp k),
                  el.se_addr )
            else begin
              Hashtbl.replace wit_unp k el.se_addr;
              unp := KS.add k !unp
            end
          | M_shadow_write ->
            chk := KS.empty;
            unp := KS.empty
          | M_opaque -> (
            match m.m_action with
            | Some _ ->
              chk := KS.empty;
              unp := KS.empty
            | None -> ()))
        el.se_metas;
      st :=
        ( Jt_analysis.Avail.insn_transfer el.se_insn !chk,
          Jt_analysis.Avail.insn_transfer el.se_insn !unp ))
    spine;
  drops

(* Recognize the counted-loop shape on a spine and collect the affine
   checks the induction guard can hoist.  Mirrors the static SCEV
   recognizer ([cmp ivar, bound; jcc {>=,>} exit] at the head, exactly
   one definition of [ivar] and it is [add ivar, 1]) but accepts a
   register-held bound, provided that register is never written on the
   spine — the streak re-entry condition makes "never written on the
   spine" equivalent to "stable for the remaining trips".  The whole
   spine is disqualified if anything on it can change shadow state
   (calls/syscalls, poisoning or unpoisoning metas, opaque actions):
   the guard checks shadow once at onset, so shadow must be frozen for
   the streak's duration.  Returns the guard plus the plan positions of
   the hoisted checks (with their instruction addresses, for the
   decision log). *)
let detect_induction ~drops_streak (spine : spine_el array) =
  let n = Array.length spine in
  if n < 3 then None
  else begin
    (* The [cmp ivar, bound; jcc {>=,>}] exit test sits at the spine's
       head when the trace was recorded from the loop-head block, or at
       its tail when NET picked the (hotter) body block and the spine is
       the same iteration rotated.  Either way the trip-range math is
       identical: under a streak, re-entry came through the test's
       fall-through, so the onset value [i0] is a trip the body really
       runs (tail form) or is gated before any access (head form).  The
       trace must stay on the fall-through path: a taken target that
       re-enters the spine would invert the exit semantics. *)
    let pair_at p =
      match (spine.(p).se_insn, spine.(p + 1).se_insn) with
      | Insn.Cmp (ivar, bnd), Insn.Jcc (cond, target) -> (
        let stays_in_trace =
          if p + 2 < n then target = spine.(p + 2).se_addr
          else target = spine.(0).se_addr
        in
        match cond with
        | _ when stays_in_trace -> None
        | Insn.Gt | Insn.Ugt -> Some (ivar, bnd, true)
        | Insn.Ge | Insn.Uge -> Some (ivar, bnd, false)
        | _ -> None)
      | _ -> None
    in
    let pair =
      match pair_at (n - 2) with
      | Some (i, b, inc) -> Some (i, b, inc, n - 2)
      | None -> (
        match pair_at 0 with
        | Some (i, b, inc) -> Some (i, b, inc, 0)
        | None -> None)
    in
    match pair with
    | None -> None
    | Some (ivar, bnd, ig_incl, cmp_pos) ->
      let defined r =
        Array.exists
          (fun el -> List.exists (Reg.equal r) (Insn.defs el.se_insn))
          spine
      in
      let ivar_defs = ref [] in
      Array.iter
        (fun el ->
          if List.exists (Reg.equal ivar) (Insn.defs el.se_insn) then
            ivar_defs := el.se_insn :: !ivar_defs)
        spine;
      let unit_step =
        match !ivar_defs with
        | [ Insn.Binop (Insn.Add, r, Insn.Imm 1) ] -> Reg.equal r ivar
        | _ -> false
      in
      let bound =
        match bnd with
        | Insn.Imm v -> Some (Ib_imm (Word.to_signed v))
        | Insn.Reg r ->
          if Reg.equal r ivar || defined r then None else Some (Ib_reg r)
      in
      let shadow_frozen =
        not
          (Array.exists
             (fun el ->
               (match el.se_insn with
               | Insn.Call _ | Insn.Call_ind _ | Insn.Syscall _ -> true
               | _ -> false)
               || List.exists
                    (fun (m : meta) ->
                      match (m.m_kind, m.m_action) with
                      | (M_shadow_write | M_unpoison _), _ -> true
                      | M_opaque, Some _ -> true
                      | (M_opaque | M_check _), _ -> false)
                    el.se_metas)
             spine)
      in
      if not (unit_step && shadow_frozen) then None
      else (
        match bound with
        | None -> None
        | Some ig_bound ->
          let inc_seen = ref 0 in
          let checks = ref [] and sites = ref [] in
          Array.iter
            (fun el ->
              List.iteri
                (fun j (m : meta) ->
                  match m.m_kind with
                  | M_check (b, x, _s, _d, _w)
                    when x = Reg.index ivar
                         && b <> Reg.index ivar
                         && (b < 0 || not (defined (Reg.of_index b)))
                         && not (Hashtbl.mem drops_streak (el.se_bi, el.se_k, j))
                    ->
                    checks := (m, !inc_seen) :: !checks;
                    sites := ((el.se_bi, el.se_k, j), el.se_addr) :: !sites
                  | _ -> ())
                el.se_metas;
              if List.exists (Reg.equal ivar) (Insn.defs el.se_insn) then
                incr inc_seen)
            spine;
          if !checks = [] then None
          else
            Some
              ( { ig_ivar = ivar; ig_bound; ig_incl; ig_checks = List.rev !checks },
                spine.(cmp_pos).se_addr,
                List.rev !sites ))
  end

let build_overlay (blocks : cached array) =
  let n = Array.length blocks in
  let has_tagged =
    Array.exists
      (fun (c : cached) ->
        Array.exists
          (List.exists (fun (m : meta) ->
               match m.m_kind with
               | M_check _ | M_unpoison _ -> true
               | M_opaque | M_shadow_write -> false))
          c.cb_plan)
      blocks
  in
  if not has_tagged then None
  else begin
    let spine =
      Array.concat
        (Array.to_list
           (Array.mapi
              (fun bi (c : cached) ->
                Array.mapi
                  (fun k (addr, insn, _len) ->
                    {
                      se_bi = bi;
                      se_k = k;
                      se_addr = addr;
                      se_insn = insn;
                      se_metas = c.cb_plan.(k);
                    })
                  c.cb.insns)
              blocks))
    in
    let empty2 = (KS.empty, KS.empty) in
    (* One forward pass is the fixpoint on a spine; the out-state seeds
       the steady-state (streak) walk: for a straight line,
       out(out(bot)) = out(bot), so this is also the back-edge fixpoint. *)
    let _pre, out =
      Spine_solver.solve_spine ~entry:empty2 ~transfer:spine_transfer spine
    in
    let wit_chk = Hashtbl.create 16 and wit_unp = Hashtbl.create 16 in
    let drops_base = decide_spine ~entry:empty2 ~wit_chk ~wit_unp spine in
    (* the base walk's final witness tables describe exactly the keys in
       [out] — the availability a streak entry inherits from the
       previous trip around the trace *)
    let drops_streak = decide_spine ~entry:out ~wit_chk ~wit_unp spine in
    (* a streak drop the base walk also made keeps its reason; one only
       the carried-over availability justifies is a loop-invariant
       (streak) elision *)
    Hashtbl.iter
      (fun key (reason, wit, addr) ->
        if not (Hashtbl.mem drops_base key) then
          Hashtbl.replace drops_streak key ("trace-streak", wit, addr)
        else ignore reason)
      (Hashtbl.copy drops_streak);
    (* induction-range hoisting is streak-only: the cold plans keep the
       per-iteration checks, the steady-state plans trade them for the
       onset guard.  The witness recorded for a "trace-ind" drop is the
       loop-head compare whose bound the guard reads. *)
    let ind = detect_induction ~drops_streak spine in
    (match ind with
    | Some (_, cmp_addr, sites) ->
      List.iter
        (fun (key, addr) ->
          Hashtbl.replace drops_streak key ("trace-ind", cmp_addr, addr))
        sites
    | None -> ());
    if Hashtbl.length drops_base = 0 && Hashtbl.length drops_streak = 0 then
      None
    else begin
      let filter_plans drops =
        Array.mapi
          (fun bi (c : cached) ->
            Array.mapi
              (fun k metas ->
                List.filteri
                  (fun j _ -> not (Hashtbl.mem drops (bi, k, j)))
                  metas)
              c.cb_plan)
          blocks
      in
      let counts drops reason =
        let a = Array.make n 0 in
        Hashtbl.iter
          (fun (bi, _, _) (r, _, _) -> if r = reason then a.(bi) <- a.(bi) + 1)
          drops;
        a
      in
      let decisions =
        Hashtbl.fold (fun _ (r, w, a) acc -> (a, r, w) :: acc) drops_base []
        @ Hashtbl.fold
            (fun key (r, w, a) acc ->
              if Hashtbl.mem drops_base key then acc else (a, r, w) :: acc)
            drops_streak []
        |> List.sort compare
      in
      Some
        {
          ov_plans = filter_plans drops_base;
          ov_plans_streak = filter_plans drops_streak;
          ov_ind = Option.map (fun (g, _, _) -> g) ind;
          ov_dom = counts drops_base "trace-dom";
          ov_canary = counts drops_base "trace-canary";
          ov_s_dom = counts drops_streak "trace-dom";
          ov_s_canary = counts drops_streak "trace-canary";
          ov_s_streak = counts drops_streak "trace-streak";
          ov_s_ind = counts drops_streak "trace-ind";
          ov_decisions = decisions;
        }
    end
  end

(* ---- trace recording (NET) ---- *)

let finalize_recording t =
  match t.recording with
  | None -> ()
  | Some (head, acc) ->
    t.recording <- None;
    (* keep the longest prefix still alive and executable *)
    let rec prefix = function
      | c :: rest when c.cb_valid && Array.length c.cb.insns > 0 ->
        c :: prefix rest
      | _ -> []
    in
    let blocks = prefix (List.rev acc) in
    if List.length blocks >= 2 then begin
      let arr = Array.of_list blocks in
      let overlay = if t.trace_elide then build_overlay arr else None in
      (* a dead predecessor may still sit in the table under this head;
         retire it cleanly so the live count stays exact *)
      (match Hashtbl.find_opt t.traces head with
      | Some old -> drop_trace t old
      | None -> ());
      let tr =
        { tr_head = head; tr_blocks = arr; tr_valid = true; tr_overlay = overlay }
      in
      Hashtbl.replace t.traces head tr;
      t.n_traces_live <- t.n_traces_live + 1;
      Array.iter
        (fun (c : cached) ->
          if not (List.memq tr c.cb_traces) then
            c.cb_traces <- tr :: c.cb_traces)
        arr;
      t.stats.st_traces_built <- t.stats.st_traces_built + 1;
      (let m = Jt_metrics.Metrics.Counters.current () in
       m.c_traces_built <- m.c_traces_built + 1);
      (* Accounting against the static claim partition: an overlay drop
         at an address the static pass kept ([Claims.checked]) is
         redundancy only visible at trace granularity. *)
      (match overlay with
      | Some ov ->
        List.iter
          (fun (insn, _, _) ->
            match Hashtbl.find_opt t.claims insn with
            | Some code when code = Jt_ir.Ir.Claims.checked ->
              t.stats.st_claim_checked_drops <-
                t.stats.st_claim_checked_drops + 1
            | Some _ | None -> ())
          ov.ov_decisions
      | None -> ());
      if Jt_trace.Trace.is_enabled () then begin
        Jt_trace.Trace.emit
          (Jt_trace.Trace.Trace_build { head; blocks = Array.length arr });
        match overlay with
        | Some ov ->
          List.iter
            (fun (insn, reason, witness) ->
              Jt_trace.Trace.emit
                (Jt_trace.Trace.Trace_elide { head; insn; reason; witness }))
            ov.ov_decisions
        | None -> ()
      end
    end

(* Head-execution counting and recording bookkeeping for one
   dispatcher-level entry of [c] at [pc] (not reached through a trace).
   Ends an in-progress recording when it loops back to its head, reaches
   another live trace's head, or hits the length cap; otherwise appends
   the entered block.  A block whose entry count crosses the hot
   threshold (and that has no live trace yet) starts a recording. *)
let note_entry t (c : cached) pc =
  match t.recording with
  | Some (head, acc) ->
    if
      pc = head
      || List.length acc >= max_trace_len
      || (match Hashtbl.find_opt t.traces pc with
         | Some tr -> trace_alive tr
         | None -> false)
    then finalize_recording t
    else t.recording <- Some (head, c :: acc)
  | None ->
    c.cb_hot <- c.cb_hot + 1;
    if
      c.cb_hot >= hot_threshold
      && (match Hashtbl.find_opt t.traces pc with
         | Some tr -> not (trace_alive tr)
         | None -> true)
    then t.recording <- Some (pc, [ c ])

(* The dispatch loop.  After a block whose last instruction is a direct
   transfer, the next PC is compared against the block's static
   successors: a previously installed chain link is followed without
   touching the code-cache hash table (a chain hit).  After an indirect
   transfer, the exiting block's per-site inline cache is probed: a hit
   costs [p_ibl_hit] and skips the dispatcher, a miss pays the full
   [p_indirect] lookup and installs the resolved target for next time.
   A live trace registered at the target address upgrades the entry to a
   superblock execution.  Chaining and traces affect only host-level
   dispatch work; the IBL additionally replaces the flat per-indirect
   charge with a hit/miss split (cheaper on hits, never dearer).
   Program output, instruction counts and violations are bit-identical
   with every combination of the knobs. *)
let run ?(fuel = 200_000_000) t =
  let vm = t.vm in
  let budget = vm.Jt_vm.Vm.icount + fuel in
  let m = Jt_metrics.Metrics.Counters.current () in
  let prev : cached option ref = ref None in
  (* The streak: the trace that completed head-to-tail on the immediately
     preceding dispatch.  If the very next dispatch re-enters that same
     trace, only host dispatcher code ran in between, so the availability
     its spine analysis computed at the tail really holds at the head —
     the steady-state plan variant is legal.  Anything else (a plain
     block, a phase change, a side exit) breaks the streak. *)
  let streak : trace option ref = ref None in
  (* Whether the previous dispatch's trace execution already ran in
     streak mode: the induction guard fires only on the transition into
     a streak (onset), never on its continuation trips. *)
  let was_streak = ref false in
  (try
     while vm.Jt_vm.Vm.status = Jt_vm.Vm.Running do
       if vm.Jt_vm.Vm.icount >= budget then
         vm.Jt_vm.Vm.status <- Jt_vm.Vm.Fault Jt_vm.Vm.Out_of_fuel
       else if vm.Jt_vm.Vm.pc = Jt_vm.Vm.sentinel then begin
         (* A phase-ending return is still an indirect transfer; with the
            IBL on its (probe-skipping) charge lands here.  Not counted
            as an IBL miss: no code-cache lookup happens for the
            sentinel. *)
         (match !prev with
         | Some p when t.ibl && p.cb_indirect_end ->
           Jt_vm.Vm.charge vm t.profile.p_indirect
         | Some _ | None -> ());
         prev := None;
         streak := None;
         was_streak := false;
         Jt_vm.Vm.advance_phase vm
       end
       else begin
         let pc = vm.Jt_vm.Vm.pc in
         let linked =
           if not t.chain then None
           else
             match !prev with
             | Some p when p.cb_succ_taken = pc -> (
               match p.cb_link_taken with
               | Some c when c.cb_valid -> Some c
               | Some c ->
                 if Jt_trace.Trace.is_enabled () then
                   Jt_trace.Trace.emit
                     (Jt_trace.Trace.Chain_sever
                        { from_pc = p.cb.bb_addr; to_pc = c.cb.bb_addr });
                 p.cb_link_taken <- None;
                 None
               | None -> None)
             | Some p when p.cb_succ_fall = pc -> (
               match p.cb_link_fall with
               | Some c when c.cb_valid -> Some c
               | Some c ->
                 if Jt_trace.Trace.is_enabled () then
                   Jt_trace.Trace.emit
                     (Jt_trace.Trace.Chain_sever
                        { from_pc = p.cb.bb_addr; to_pc = c.cb.bb_addr });
                 p.cb_link_fall <- None;
                 None
               | None -> None)
             | Some _ | None -> None
         in
         (* [ibl_site] remembers the probed site so a dispatcher
            resolution can install the new target into it. *)
         let via_ibl, ibl_site =
           match (linked, !prev) with
           | None, Some p when t.ibl && p.cb_indirect_end -> (
             match ibl_probe p pc with
             | Some c ->
               Jt_vm.Vm.charge vm t.profile.p_ibl_hit;
               t.stats.st_ibl_hits <- t.stats.st_ibl_hits + 1;
               m.c_ibl_hits <- m.c_ibl_hits + 1;
               if Jt_trace.Trace.is_enabled () then
                 Jt_trace.Trace.emit
                   (Jt_trace.Trace.Ibl_hit { site = p.cb.bb_addr; target = pc });
               (Some c, Some p)
             | None ->
               Jt_vm.Vm.charge vm t.profile.p_indirect;
               t.stats.st_ibl_misses <- t.stats.st_ibl_misses + 1;
               m.c_ibl_misses <- m.c_ibl_misses + 1;
               if Jt_trace.Trace.is_enabled () then
                 Jt_trace.Trace.emit
                   (Jt_trace.Trace.Ibl_miss { site = p.cb.bb_addr; target = pc });
               (None, Some p))
           | _ -> (None, None)
         in
         let cached =
           match (linked, via_ibl) with
           | Some c, _ ->
             t.stats.st_chain_hits <- t.stats.st_chain_hits + 1;
             m.c_chain_hits <- m.c_chain_hits + 1;
             c
           | None, Some c -> c
           | None, None ->
             t.stats.st_dispatch_entries <- t.stats.st_dispatch_entries + 1;
             m.c_dispatch_entries <- m.c_dispatch_entries + 1;
             let c =
               match Hashtbl.find_opt t.cache pc with
               | Some c -> c
               | None -> translate t pc
             in
             (if t.chain then
                match !prev with
                | Some p when p.cb_valid ->
                  if p.cb_succ_taken = pc || p.cb_succ_fall = pc then begin
                    if p.cb_succ_taken = pc then p.cb_link_taken <- Some c
                    else p.cb_link_fall <- Some c;
                    if Jt_trace.Trace.is_enabled () then
                      Jt_trace.Trace.emit
                        (Jt_trace.Trace.Chain_link
                           { from_pc = p.cb.bb_addr; to_pc = pc })
                  end
                | Some _ | None -> ());
             (match ibl_site with
             | Some p when p.cb_valid -> ibl_install p c
             | Some _ | None -> ());
             c
         in
         if Array.length cached.cb.insns = 0 then begin
           t.stats.st_decode_faults <- t.stats.st_decode_faults + 1;
           vm.Jt_vm.Vm.status <- Jt_vm.Vm.Fault (Jt_vm.Vm.Decode_fault pc)
         end
         else begin
           let live_trace =
             if not t.trace then None
             else
               match Hashtbl.find_opt t.traces pc with
               | Some tr when trace_alive tr -> Some tr
               | Some tr ->
                 drop_trace t tr;
                 None
               | None -> None
           in
           let last =
             match live_trace with
             | Some tr ->
               (* reaching a live trace head ends any recording *)
               finalize_recording t;
               let use_streak =
                 match !streak with Some s -> s == tr | None -> false
               in
               let last, completed =
                 exec_trace t ~budget ~streak:use_streak
                   ~streak_onset:(use_streak && not !was_streak) tr
               in
               streak := (if completed then Some tr else None);
               was_streak := use_streak;
               last
             | None ->
               streak := None;
               was_streak := false;
               if t.trace then note_entry t cached pc;
               exec_block t ~budget cached;
               cached
           in
           prev :=
             if vm.Jt_vm.Vm.status = Jt_vm.Vm.Running && last.cb_valid then
               Some last
             else begin
               (* the exit of a block that invalidated itself cannot be
                  probed next iteration; settle its indirect charge now *)
               (if
                  t.ibl && last.cb_indirect_end
                  && vm.Jt_vm.Vm.status = Jt_vm.Vm.Running
                then Jt_vm.Vm.charge vm t.profile.p_indirect);
               None
             end
         end
       end
     done
   with Jt_vm.Vm.Security_abort why -> vm.Jt_vm.Vm.status <- Jt_vm.Vm.Aborted why);
  (* Every block execution must be accounted to exactly one entry path
     (dispatcher, chain link, IBL hit, or trace interior); dispatcher
     entries that resolve to an empty block decode-fault without
     executing.  Checked after every run, tracing enabled or not. *)
  let s = t.stats in
  Jt_trace.Trace.entry_accounting ~dispatch:s.st_dispatch_entries
    ~chain:s.st_chain_hits ~ibl:s.st_ibl_hits
    ~trace_interior:s.st_trace_interior ~decode_faults:s.st_decode_faults
    ~block_execs:s.st_block_execs;
  (* debug oracle for the incremental live count: eager teardown must
     keep it equal to a full recount at every quiescent point *)
  assert (t.n_traces_live = traces_live_scan t)

let stats t = t.stats

(* Zero the per-engine counters so an engine reused across workloads (or
   across repeated runs of one workload) reports per-run numbers.  The
   code cache, traces and inline caches are left intact: resetting stats
   must not change what executes. *)
let reset_stats t =
  let s = t.stats in
  s.st_blocks_static <- 0;
  s.st_blocks_dynamic <- 0;
  s.st_block_execs <- 0;
  s.st_indirects <- 0;
  s.st_rules_applied <- 0;
  s.st_chain_hits <- 0;
  s.st_dispatch_entries <- 0;
  s.st_ibl_hits <- 0;
  s.st_ibl_misses <- 0;
  s.st_traces_built <- 0;
  s.st_trace_execs <- 0;
  s.st_trace_interior <- 0;
  s.st_decode_faults <- 0;
  s.st_claim_checked_drops <- 0

(* Elision decisions of the live traces, sorted by head address:
   [(head, [(insn, reason, witness)])].  Diagnostics for the CLI's
   [analyze --facts] dump; reasons are ["trace-dom"], ["trace-canary"],
   ["trace-streak"] and ["trace-ind"]. *)
let trace_elisions t =
  Hashtbl.fold
    (fun head tr acc ->
      match tr.tr_overlay with
      | Some ov when tr.tr_valid -> (head, ov.ov_decisions) :: acc
      | Some _ | None -> acc)
    t.traces []
  |> List.sort compare

let dynamic_block_fraction t =
  let s = t.stats in
  let total = s.st_blocks_static + s.st_blocks_dynamic in
  if total = 0 then 0.0
  else float_of_int s.st_blocks_dynamic /. float_of_int total
