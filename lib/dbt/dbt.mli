(** The dynamic binary modifier engine (the DynamoRIO analog).

    Drives a VM the way a dynamic binary translator drives a process:
    basic blocks are discovered at their first execution, handed to the
    instrumentation client, and placed in a code cache; direct branches
    between cached blocks are linked for free, while indirect transfers
    pay a target lookup on every execution.

    The engine implements the Janitizer-specific machinery of sections
    3.4.1–3.4.2: per-module rewrite-rule hash tables populated at module
    load time (with load-base adjustment for PIC modules), block
    classification into statically-seen versus dynamically-discovered
    code, and dispatch of each block to the client with its applicable
    rules. *)

open Jt_isa

type block = {
  bb_addr : int;  (** run-time address *)
  insns : (int * Insn.t * int) array;  (** (address, instruction, length) *)
}

(** What a piece of instrumentation does to shadow state, as far as the
    trace-spine elision pass can tell.  Tools that want their checks
    considered for trace-level elision tag them [M_check]/[M_unpoison]
    with the access's {!Jt_analysis.Avail.Key.t}; everything else stays
    [M_opaque] (an opaque meta with an action is treated as a
    conservative barrier) or [M_shadow_write] (a poisoning write —
    always a barrier). *)
type meta_kind =
  | M_opaque
  | M_check of Jt_analysis.Avail.Key.t
  | M_unpoison of Jt_analysis.Avail.Key.t
  | M_shadow_write

(** One piece of inserted instrumentation, executed immediately before
    its anchor instruction.  [m_cost] is the full cycle price including
    whatever save/restore traffic the tool decided it needs. *)
type meta = {
  m_cost : int;
  m_action : (Jt_vm.Vm.t -> unit) option;
  m_kind : meta_kind;
}

type plan = meta list array
(** Per-instruction instrumentation, indexed like [block.insns].  Use
    {!no_plan} for "translate as-is". *)

val no_plan : block -> plan

(** How the block reached the client (section 3.4.1): via rewrite rules
    from the static analyzer, or discovered dynamically with no static
    information (dynamically generated / dlopen'd without rules / missed
    by static control-flow recovery). *)
type provenance = Static_rules | Dynamic_only

type client = {
  cl_name : string;
  cl_on_block :
    Jt_vm.Vm.t -> block -> provenance -> rules_at:(int -> Jt_rules.Rules.t list) -> plan;
}

(** Engine cost profile, so baseline translators (Lockdown's lightweight
    libdetox) can share the machinery with different constants. *)
type profile = {
  p_name : string;
  p_translate_block : int;
  p_translate_insn : int;
  p_indirect : int;
      (** per executed indirect transfer (incl. returns) that misses the
          inline caches and falls back to the dispatcher lookup *)
  p_ibl_hit : int;
      (** per indirect transfer resolved by a per-site inline cache; equal
          to [p_indirect] for engines without an IBL fast path *)
  p_per_block : int;  (** per block execution *)
}

val dynamorio : profile
val lightweight : profile

type stats = {
  mutable st_blocks_static : int;  (** unique blocks found in rule tables *)
  mutable st_blocks_dynamic : int;  (** unique blocks that missed *)
  mutable st_block_execs : int;
  mutable st_indirects : int;
  mutable st_rules_applied : int;
  mutable st_chain_hits : int;
      (** block transfers that followed a direct chain link, skipping the
          dispatcher entirely *)
  mutable st_dispatch_entries : int;
      (** dispatcher entries: code-cache hash probes (and translations) *)
  mutable st_ibl_hits : int;
      (** indirect transfers resolved by a per-site inline cache *)
  mutable st_ibl_misses : int;
      (** indirect transfers that probed an inline cache and missed *)
  mutable st_traces_built : int;  (** superblock traces stitched *)
  mutable st_trace_execs : int;  (** trace executions entered at a head *)
  mutable st_trace_interior : int;
      (** block transitions taken inside a trace without any dispatch *)
  mutable st_decode_faults : int;
      (** entries that resolved to an empty (undecodable) block, which
          faults without executing *)
  mutable st_claim_checked_drops : int;
      (** trace-overlay drops at instructions whose stored static claim
          partition says the check was kept ([Jt_ir.Ir.Claims.checked]) —
          redundancy visible only at trace granularity; 0 without
          [ir_for] *)
}

type t

val create :
  vm:Jt_vm.Vm.t ->
  ?profile:profile ->
  ?client:client ->
  ?chain:bool ->
  ?ibl:bool ->
  ?trace:bool ->
  ?trace_elide:bool ->
  ?rules_for:(string -> Jt_rules.Rules.file option) ->
  ?ir_for:(string -> Jt_ir.Ir.t option) ->
  unit ->
  t
(** Create an engine bound to [vm].  Must be called before [Vm.boot] so
    that the engine observes startup module loads (it subscribes to the
    loader and to cache-flush events).  [rules_for] supplies each module's
    statically generated rule file, if one exists.

    [ir_for] supplies each module's stored IR ([Jt_ir]), if one exists;
    the engine reads the tool-contributed claim partitions from its aux
    tables at load time (addresses adjusted by the load base for PIC,
    like the rule tables) and uses them for overlay accounting
    ([st_claim_checked_drops]).  Execution, cycles, output and
    violations are identical with or without it.

    [chain] (default true) enables direct block chaining: blocks ending
    in a direct [Jmp]/[Jcc]/[Call] are linked to their translated
    successors, so chains of hot blocks execute without re-entering the
    dispatcher or re-probing the code-cache hash table.  Links are
    severed on invalidation.  Chaining changes only host-level dispatch
    work ({!stats} and [Jt_metrics] counters); simulated cycles, outputs
    and violations are bit-identical with it off.

    [ibl] (default true) enables per-site indirect-branch inline caches:
    each block ending in [Jmp_ind]/[Call_ind]/[Ret] keeps a last-target
    slot plus a small associative table of recent targets, probed before
    the dispatcher.  A hit charges the profile's cheaper [p_ibl_hit]; only
    a miss pays [p_indirect] and re-enters the dispatcher.  Program
    output, exit status, instruction counts and violations are identical
    with it off; simulated cycles drop (that is the modeled win).

    [trace] (default true) enables NET-style hot-trace formation: block
    heads that cross a hotness threshold record the next-executing tail of
    cached blocks into a superblock, which then runs head-to-tail with a
    single per-block dispatch charge.  Traces live on top of the ordinary
    code cache: any range invalidation (dlopen unload, [flush_range],
    self-modifying code) that kills a constituent block kills the trace,
    which is then re-formed on demand.  Like [ibl], observable program
    behavior is bit-identical with it off.

    [trace_elide] (default true) runs the JASan availability
    must-analysis along each newly recorded trace spine and builds an
    overlay of thinned instrumentation plans: checks dominated within
    the trace by an earlier check of the same address key are elided, as
    are redundant canary unpoisons, and a steady-state plan variant
    additionally elides loop-invariant checks when the trace re-enters
    its own head immediately after a completed trip.  The constituents'
    own plans are never modified, so side exits, teardown and ordinary
    block execution structurally restore every check.  Exit status,
    output, instruction counts and the deduplicated violation set are
    identical with it off; only simulated cycles (check work) drop. *)

val run : ?fuel:int -> t -> unit
(** Execute the booted program to completion under the engine.  On the
    way out, asserts the entry-accounting identity
    [st_dispatch_entries + st_chain_hits + st_ibl_hits + st_trace_interior
     = st_block_execs + st_decode_faults]
    via {!Jt_trace.Trace.entry_accounting} (raising
    [Jt_trace.Trace.Invariant_failure] on a mismatch), tracing enabled
    or not. *)

val stats : t -> stats

val reset_stats : t -> unit
(** Zero every {!stats} counter without touching the code cache, chain
    links, inline caches or traces, so an engine reused across workloads
    reports per-run numbers.  The invariant
    [st_dispatch_entries + st_chain_hits + st_ibl_hits + st_trace_interior
     = st_block_execs + st_decode_faults] holds from any reset point. *)

val traces_live : t -> int
(** Number of built traces whose constituent blocks are all still valid
    (i.e. would still execute if their head is reached).  O(1): the count
    is maintained incrementally by trace build and teardown, which is
    exact because invalidating any constituent eagerly tears its traces
    down. *)

val traces_live_scan : t -> int
(** The full-recount oracle for {!traces_live} — walks every trace and
    validates every constituent.  O(traces · length); for debug
    assertions and tests only.  {!run} asserts the two agree on exit. *)

val trace_elisions : t -> (int * (int * string * int) list) list
(** Elision decisions of the live traces, sorted by head address:
    [(head, [(insn, reason, witness)])] with reasons ["trace-dom"],
    ["trace-canary"] and ["trace-streak"].  Diagnostics (the CLI's
    [analyze --facts] dump). *)

val dynamic_block_fraction : t -> float
(** Fraction of executed unique blocks that were only discovered
    dynamically (Figure 14). *)
