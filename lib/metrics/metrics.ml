(* A zero or negative cell would feed [log] and poison the whole summary
   row with [nan]/[0.]; such values are measurement failures, so they are
   skipped (with a warning on stderr) rather than propagated. *)
let geomean xs =
  let pos, bad = List.partition (fun x -> x > 0.0) xs in
  if bad <> [] then
    Printf.eprintf "warning: geomean: skipping %d non-positive value(s)\n%!"
      (List.length bad);
  match pos with
  | [] -> 0.0
  | pos ->
    let n = float_of_int (List.length pos) in
    exp (List.fold_left (fun acc x -> acc +. log x) 0.0 pos /. n)

module Counters = struct
  type t = {
    mutable c_chain_hits : int;
    mutable c_dispatch_entries : int;
    mutable c_ibl_hits : int;
    mutable c_ibl_misses : int;
    mutable c_traces_built : int;
    mutable c_trace_execs : int;
    mutable c_module_lookups : int;
    mutable c_lookup_probes : int;
    mutable c_flush_visits : int;
    mutable c_flush_drops : int;
    mutable c_san_checks : int;
    mutable c_san_elide_frame : int;
    mutable c_san_elide_dom : int;
    mutable c_san_trace_elide_dom : int;
    mutable c_san_trace_elide_canary : int;
    mutable c_san_trace_elide_streak : int;
    mutable c_san_trace_elide_ind : int;
    mutable c_ir_store_hits : int;
    mutable c_ir_store_misses : int;
    mutable c_ir_store_evicts : int;
    mutable c_ir_store_corrupt : int;
  }

  let fresh () =
    {
      c_chain_hits = 0;
      c_dispatch_entries = 0;
      c_ibl_hits = 0;
      c_ibl_misses = 0;
      c_traces_built = 0;
      c_trace_execs = 0;
      c_module_lookups = 0;
      c_lookup_probes = 0;
      c_flush_visits = 0;
      c_flush_drops = 0;
      c_san_checks = 0;
      c_san_elide_frame = 0;
      c_san_elide_dom = 0;
      c_san_trace_elide_dom = 0;
      c_san_trace_elide_canary = 0;
      c_san_trace_elide_streak = 0;
      c_san_trace_elide_ind = 0;
      c_ir_store_hits = 0;
      c_ir_store_misses = 0;
      c_ir_store_evicts = 0;
      c_ir_store_corrupt = 0;
    }

  (* One instance per domain: concurrent driver runs on separate domains
     each count into their own record, so counters never race and a
     snapshot taken inside a pool job describes that job alone. *)
  let key = Domain.DLS.new_key fresh

  let current () = Domain.DLS.get key

  let reset () =
    let c = current () in
    c.c_chain_hits <- 0;
    c.c_dispatch_entries <- 0;
    c.c_ibl_hits <- 0;
    c.c_ibl_misses <- 0;
    c.c_traces_built <- 0;
    c.c_trace_execs <- 0;
    c.c_module_lookups <- 0;
    c.c_lookup_probes <- 0;
    c.c_flush_visits <- 0;
    c.c_flush_drops <- 0;
    c.c_san_checks <- 0;
    c.c_san_elide_frame <- 0;
    c.c_san_elide_dom <- 0;
    c.c_san_trace_elide_dom <- 0;
    c.c_san_trace_elide_canary <- 0;
    c.c_san_trace_elide_streak <- 0;
    c.c_san_trace_elide_ind <- 0;
    c.c_ir_store_hits <- 0;
    c.c_ir_store_misses <- 0;
    c.c_ir_store_evicts <- 0;
    c.c_ir_store_corrupt <- 0

  let snapshot_of c =
    [
      ("chain_hits", c.c_chain_hits);
      ("dispatch_entries", c.c_dispatch_entries);
      ("ibl_hits", c.c_ibl_hits);
      ("ibl_misses", c.c_ibl_misses);
      ("traces_built", c.c_traces_built);
      ("trace_execs", c.c_trace_execs);
      ("module_lookups", c.c_module_lookups);
      ("lookup_probes", c.c_lookup_probes);
      ("flush_visits", c.c_flush_visits);
      ("flush_drops", c.c_flush_drops);
      ("san_checks", c.c_san_checks);
      ("san_elide_frame", c.c_san_elide_frame);
      ("san_elide_dom", c.c_san_elide_dom);
      ("san_trace_elide_dom", c.c_san_trace_elide_dom);
      ("san_trace_elide_canary", c.c_san_trace_elide_canary);
      ("san_trace_elide_streak", c.c_san_trace_elide_streak);
      ("san_trace_elide_ind", c.c_san_trace_elide_ind);
      ("ir_store_hits", c.c_ir_store_hits);
      ("ir_store_misses", c.c_ir_store_misses);
      ("ir_store_evicts", c.c_ir_store_evicts);
      ("ir_store_corrupt", c.c_ir_store_corrupt);
    ]

  let snapshot () = snapshot_of (current ())

  let merge snaps =
    match snaps with
    | [] -> snapshot_of (fresh ())
    | first :: _ ->
      List.map
        (fun (name, _) ->
          ( name,
            List.fold_left
              (fun acc snap ->
                acc + Option.value ~default:0 (List.assoc_opt name snap))
              0 snaps ))
        first
end

type cell = Value of float | Fail of string

type table = {
  t_title : string;
  t_unit : string;
  t_cols : string list;
  t_rows : (string * cell list) list;
}

let value_exn = function Value v -> Some v | Fail _ -> None

let col_values t k =
  List.filter_map
    (fun (_, cells) ->
      match List.nth_opt cells k with Some (Value v) -> Some v | _ -> None)
    t.t_rows

let geomean_row t =
  List.mapi
    (fun k _ ->
      match col_values t k with [] -> None | vs -> Some (geomean vs))
    t.t_cols

let all_values cells =
  List.for_all (function Value _ -> true | Fail _ -> false) cells

let geomean_x_row t =
  let complete = List.filter (fun (_, cells) -> all_values cells) t.t_rows in
  List.mapi
    (fun k _ ->
      let vs =
        List.filter_map
          (fun (_, cells) ->
            match List.nth_opt cells k with Some (Value v) -> Some v | _ -> None)
          complete
      in
      match vs with [] -> None | vs -> Some (geomean vs))
    t.t_cols

let print t =
  let w_name =
    List.fold_left (fun acc (n, _) -> max acc (String.length n)) 10 t.t_rows
  in
  let w_col =
    List.fold_left (fun acc c -> max acc (String.length c + 2)) 14 t.t_cols
  in
  Printf.printf "\n== %s ==\n(%s)\n" t.t_title t.t_unit;
  Printf.printf "%-*s" (w_name + 2) "";
  List.iter (fun c -> Printf.printf "%*s" w_col c) t.t_cols;
  print_newline ();
  List.iter
    (fun (name, cells) ->
      Printf.printf "%-*s" (w_name + 2) name;
      List.iter
        (fun c ->
          match c with
          | Value v -> Printf.printf "%*.2f" w_col v
          | Fail _ -> Printf.printf "%*s" w_col "x")
        cells;
      print_newline ())
    t.t_rows;
  let print_summary label row =
    Printf.printf "%-*s" (w_name + 2) label;
    List.iter
      (fun v ->
        match v with
        | Some v -> Printf.printf "%*.2f" w_col v
        | None -> Printf.printf "%*s" w_col "-")
      row;
    print_newline ()
  in
  print_summary "geomean" (geomean_row t);
  let any_fail =
    List.exists (fun (_, cells) -> not (all_values cells)) t.t_rows
  in
  if any_fail then print_summary "geomean-x" (geomean_x_row t)

let print_kv title kvs =
  Printf.printf "\n== %s ==\n" title;
  List.iter (fun (k, v) -> Printf.printf "  %-28s %s\n" k v) kvs
