(** Result aggregation and table rendering for the benchmark harness. *)

val geomean : float list -> float
(** Geometric mean; 0 for an empty list.  Non-positive values would
    poison the mean through [log], so they are skipped (with a warning on
    stderr); 0 if nothing positive remains. *)

(** Hot-path instrumentation counters, incremented by the loader's
    address-range index, the DBT dispatcher and the cache-invalidation
    paths.  They measure *host-level* work (probes, visits), not simulated
    cycles, so resetting or reading them never perturbs an experiment.

    The counters are {e domain-local} ([Domain.DLS]): every domain counts
    into its own instance, so concurrent driver runs on a [Jt_pool] never
    corrupt each other.  A pool job that wants its numbers must
    {!Counters.snapshot} on its own domain (inside the job) and return
    the snapshot; the harness aggregates with {!Counters.merge}. *)
module Counters : sig
  type t = {
    mutable c_chain_hits : int;
        (** block-to-block transfers that followed a chain link without
            re-entering the dispatcher *)
    mutable c_dispatch_entries : int;
        (** dispatcher entries (code-cache hash probes) *)
    mutable c_ibl_hits : int;
        (** indirect transfers resolved by a per-site inline cache *)
    mutable c_ibl_misses : int;
        (** indirect transfers that probed an inline cache and missed *)
    mutable c_traces_built : int;  (** superblock traces stitched *)
    mutable c_trace_execs : int;  (** head-to-tail trace executions *)
    mutable c_module_lookups : int;  (** [Loader.module_at] calls *)
    mutable c_lookup_probes : int;
        (** binary-search steps across all module lookups *)
    mutable c_flush_visits : int;
        (** cache entries examined by range invalidations *)
    mutable c_flush_drops : int;
        (** cache entries actually invalidated *)
    mutable c_san_checks : int;
        (** JASan shadow-memory checks actually executed at run time *)
    mutable c_san_elide_frame : int;
        (** accesses statically elided by the VSA frame-bounds proof *)
    mutable c_san_elide_dom : int;
        (** accesses statically elided by the dominating-check pass *)
    mutable c_san_trace_elide_dom : int;
        (** dynamic check instances elided by the trace-spine
            dominating-check pass *)
    mutable c_san_trace_elide_canary : int;
        (** dynamic canary-unpoison instances deduplicated along a
            trace spine *)
    mutable c_san_trace_elide_streak : int;
        (** dynamic check instances elided by the steady-state (streak)
            trace plans: availability carried across the trace's own
            back-edge *)
    mutable c_san_trace_elide_ind : int;
        (** dynamic check instances elided by the trace induction-range
            guard: affine accesses covered by the endpoint check run
            once at streak onset *)
    mutable c_ir_store_hits : int;
        (** IR-store lookups served from memory or disk *)
    mutable c_ir_store_misses : int;
        (** IR-store lookups that had to run the static analyzer *)
    mutable c_ir_store_evicts : int;
        (** in-memory LRU entries evicted by capacity pressure *)
    mutable c_ir_store_corrupt : int;
        (** on-disk entries rejected (truncated / bad magic / wrong
            schema version / stale digest) and transparently re-analyzed *)
  }

  val current : unit -> t
  (** The calling domain's counters (created zeroed on first use). *)

  val reset : unit -> unit
  (** Zero the calling domain's counters. *)

  val snapshot : unit -> (string * int) list
  (** The calling domain's current values as name/value pairs, in a
      stable order. *)

  val snapshot_of : t -> (string * int) list

  val merge : (string * int) list list -> (string * int) list
  (** Sum snapshots pointwise (key order of the first snapshot); the
      aggregation step for per-domain snapshots collected from pool
      jobs.  Empty input yields an all-zero snapshot. *)
end

type cell =
  | Value of float
  | Fail of string  (** tool refused or crashed on this benchmark (✗) *)

type table = {
  t_title : string;
  t_unit : string;  (** e.g. "slowdown vs native", "AIR %" *)
  t_cols : string list;
  t_rows : (string * cell list) list;  (** benchmark name, one cell per column *)
}

val value_exn : cell -> float option

val geomean_row : table -> float option list
(** Per-column geomean over the benchmarks where that column has a value. *)

val geomean_x_row : table -> float option list
(** Per-column geomean restricted to benchmarks where *every* column has
    a value (the paper's "geomean-x"). *)

val print : table -> unit
(** Render to stdout with geomean (and geomean-x when columns differ in
    coverage) appended. *)

val print_kv : string -> (string * string) list -> unit
(** Simple key/value block (for the Figure 10 style tables). *)
