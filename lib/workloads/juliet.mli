(** A Juliet-style CWE-122 (heap buffer overflow) test-case suite.

    624 generated test cases, each with a good (well-behaving) and a bad
    (buggy) variant, mirroring the structure of the NIST Juliet subset the
    paper evaluates (Figure 10).  Flavours:

    - {b Heap_heap}: overflow of one heap block toward its neighbour;
      the first out-of-bounds write lands in the redzone — every
      sanitizer's bread and butter.
    - {b Heap_heap_slack}: two bugs, one of which writes only into the
      8-byte allocator alignment slack.  Byte-granular redzones (JASan)
      report both; allocator-granularity redzones (the Valgrind-class
      baseline) report fewer-than-actual — its 24 heap FNs.
    - {b Stack_heap}: a stack-resident source copied into an undersized
      heap destination; caught at the heap redzone by both.
    - {b Heap_stack_contig}: a heap walk that runs off the end of its
      block heading for the stack; caught at the redzone crossing.
    - {b Heap_stack_direct}: a corrupted pointer lands directly in a
      caller's stack frame, touching neither a redzone nor a canary —
      the 96 false negatives both tools share, consistent with JASan's
      frame-granularity stack policy. *)

type category =
  | Heap_heap
  | Heap_heap_slack
  | Stack_heap
  | Heap_stack_contig
  | Heap_stack_direct

type case = {
  c_id : int;
  c_cat : category;
  c_expected : int;  (** distinct violations the bad variant contains *)
}

val cases : case list
(** All 624, ids 0..623. *)

val build_case : case -> bad:bool -> Jt_obj.Objfile.t

val registry_for : Jt_obj.Objfile.t -> Jt_obj.Objfile.t list

type detector = Jasan_hybrid | Jasan_dyn | Valgrind

type tally = {
  t_true_pos : int;  (** bad variants fully reported *)
  t_false_neg : int;  (** bad variants with no or fewer-than-actual reports *)
  t_true_neg : int;  (** good variants with no reports *)
  t_false_pos : int;  (** good variants incorrectly flagged *)
}

val evaluate : ?limit:int -> detector -> tally
(** Run every case's two variants under the detector.  [limit] restricts
    to the first n cases (for quick tests). *)

(** {2 Sibling families}

    Beyond the CWE-122 core suite, four Juliet-style sibling families
    extend the Figure-10 detection matrix:

    - {b CWE-124} (buffer underwrite): a byte store at [base - 1] lands
      in the left redzone — caught at both redzone granularities.
    - {b CWE-415} (double free): the second [free] of the same base,
      including zero-size blocks; reported by the allocator interposer
      as ["double-free"].
    - {b CWE-416} (use-after-free): dangling loads, dangling stores and
      stale pre-[realloc] pointers; the freed payload stays
      [Heap_freed] in the allocator quarantine.
    - {b CWE-121} (stack buffer overflow): a computed-pointer store
      into the canary slot, storing the canary's own value — invisible
      natively (exit 0), caught only by canary-aware shadow tools, so
      the Valgrind-class baseline false-negatives the whole family. *)

type family = Cwe124 | Cwe415 | Cwe416 | Cwe121

val family_name : family -> string
val families : family list

type fcase = {
  fc_id : int;
  fc_fam : family;
  fc_expected : int;  (** distinct violations the bad variant contains *)
  fc_kind : string;  (** the violation kind the bad variant must raise *)
}

val family_cases : family -> fcase list
(** 48 (CWE-124), 48 (CWE-415), 96 (CWE-416) and 72 (CWE-121) cases. *)

val all_family_cases : fcase list

val build_family_case : fcase -> bad:bool -> Jt_obj.Objfile.t

val evaluate_family : ?limit:int -> detector -> family -> tally
