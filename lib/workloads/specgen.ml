open Jt_isa
open Jt_asm.Builder
open Jt_asm.Builder.Dsl
open Sheet

type t = {
  w_sheet : Sheet.t;
  w_main : Jt_obj.Objfile.t;
  w_registry : Jt_obj.Objfile.t list;
}

let chase_elems = 256

(* Small deterministic per-benchmark variation so the 27 programs are not
   clones of each other. *)
let seed_of name =
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h lsl 5) + !h + Char.code c) land 0xFFFF) name;
  !h

let deps_of (s : Sheet.t) =
  let libm = if s.s_alu_calls > 0 then [ "libm.so" ] else [] in
  match s.s_lang with
  | C -> "libc.so" :: libm
  | Cxx -> [ "libc.so" ] @ libm @ [ "libcxx.so" ]
  | Fortran -> [ "libc.so" ] @ libm @ [ "libgfortran.so" ]
  | Mixed_cf -> [ "libc.so" ] @ libm @ [ "libcxx.so"; "libgfortran.so" ]

let features_of = function
  | C -> []
  | Cxx -> [ Jt_obj.Objfile.Cxx_exceptions ]
  | Fortran -> [ Jt_obj.Objfile.Fortran_runtime ]
  | Mixed_cf -> [ Jt_obj.Objfile.Cxx_exceptions; Jt_obj.Objfile.Fortran_runtime ]

(* ---- building blocks ---- *)

(* The four dispatch-table operations, varied by seed. *)
let op_funcs seed =
  [
    func "op0" [ addi Reg.r0 (13 + (seed land 7)); ret ];
    func "op1" [ binopi Insn.Xor Reg.r0 (0x55 + (seed land 15)); ret ];
    func "op2" [ muli Reg.r0 5; addi Reg.r0 1; ret ];
    func "op3" [ subi Reg.r0 (7 + (seed land 3)); ret ];
  ]

let cmp_fn =
  func "cmp_fn" [ mov Reg.r3 Reg.r0; sub Reg.r3 Reg.r1; mov Reg.r0 Reg.r3; ret ]

(* SCEV-friendly streaming kernel: a[i] = a[i]*3 + i. *)
(* The stack store inside the loop models the register spills -O2 code
   has on a register-poor 32-bit target; the hybrid's frame-granularity
   stack policy skips it while dynamic-only sanitizers pay for it. *)
let stream_kernel mul =
  func "stream_kernel"
    [
      subi Reg.sp 8;
      movi Reg.r2 0;
      label "head";
      cmp Reg.r2 Reg.r1;
      jcc Insn.Ge "done";
      ld Reg.r3 (mem_bi ~scale:4 Reg.r0 Reg.r2);
      muli Reg.r3 mul;
      add Reg.r3 Reg.r2;
      st (mem_b ~disp:0 Reg.sp) Reg.r2;
      st (mem_bi ~scale:4 Reg.r0 Reg.r2) Reg.r3;
      addi Reg.r2 1;
      jmp "head";
      label "done";
      addi Reg.sp 8;
      ret;
    ]

(* Pointer-chasing kernel whose loop test (test/jne) defeats SCEV. *)
(* The optional per-step helper call models the short-function
   call/return traffic of branchy, call-dense SPEC codes (interpreters,
   compilers, dispatchers): it is what gives backward-edge CFI
   (shadow-stack pushes and pops) something to cost.  Streaming and
   plain pointer-chasing codes keep call-free inner loops. *)
let chase_leaf = func "chase_leaf" [ binopi Insn.Xor Reg.r1 0x1D; ret ]

let chase_kernel ~leafy =
  func "chase_kernel"
    ([
       push Reg.r6;
       subi Reg.sp 8;
       movi Reg.r3 0;
       movi Reg.r4 0;
       label "head";
       I (Jt_asm.Sinsn.Stest (Reg.r2, Jt_asm.Sinsn.Sreg Reg.r2));
       jcc Insn.Eq "done";
       ld Reg.r3 (mem_bi ~scale:4 Reg.r0 Reg.r3);
       st (mem_b ~disp:0 Reg.sp) Reg.r4;
     ]
    @ (if leafy then
         [
           mov Reg.r6 Reg.r0;
           mov Reg.r1 Reg.r3;
           call "chase_leaf";
           mov Reg.r0 Reg.r6;
           add Reg.r4 Reg.r1;
         ]
       else [ add Reg.r4 Reg.r3 ])
    @ [
        subi Reg.r2 1;
        jmp "head";
        label "done";
        mov Reg.r0 Reg.r4;
        addi Reg.sp 8;
        pop Reg.r6;
        ret;
      ])

(* switch(sel) through an inline jump table (bounds-checked, so static
   jump-table recovery succeeds). *)
let switch_kernel ~pic =
  func "switch_kernel"
    [
      cmpi Reg.r1 3;
      jcc Insn.Ugt "out";
      addr_of_label ~pic Reg.r2 "jt";
      I (Jt_asm.Sinsn.Sjmp_ind_m (mem_bi ~scale:4 Reg.r2 Reg.r1));
      label "jt";
      Inline_table [ "k0"; "k1"; "k2"; "k3" ];
      label "k0";
      addi Reg.r0 1;
      jmp "out";
      label "k1";
      binopi Insn.Xor Reg.r0 0x2A;
      jmp "out";
      label "k2";
      muli Reg.r0 3;
      jmp "out";
      label "k3";
      subi Reg.r0 5;
      label "out";
      ret;
    ]

(* Computed goto through a data-section label table: these blocks are the
   ones static control-flow recovery cannot find (Figure 14). *)
let goto_kernel ~pic n =
  let cases =
    List.concat
      (List.init n (fun i ->
           [ label (Printf.sprintf "g%d" i); addi Reg.r0 (11 + (17 * i)); jmp "gout" ]))
  in
  func "goto_kernel"
    ([
       addr_of_data ~pic Reg.r2 "goto_tbl";
       ld Reg.r1 (mem_bi ~scale:4 Reg.r2 Reg.r0);
       jmp_reg Reg.r1;
     ]
    @ cases
    @ [ label "gout"; ret ])

(* 2D five-point stencil over a rows x 32 grid: the inner loop is counted
   but the address is a derived induction value, so per-access checks
   remain — the fp-streaming benchmarks' profile. *)
let stencil_kernel =
  func "stencil_kernel"
    [
      push Reg.r6;
      subi Reg.r1 1;
      movi Reg.r2 1;
      label "rows";
      cmp Reg.r2 Reg.r1;
      jcc Insn.Ge "rdone";
      movi Reg.r3 1;
      label "cols";
      cmpi Reg.r3 31;
      jcc Insn.Ge "cdone";
      mov Reg.r4 Reg.r2;
      shli Reg.r4 5;
      add Reg.r4 Reg.r3;
      ld Reg.r5 (mem_bi ~disp:(-4) ~scale:4 Reg.r0 Reg.r4);
      ld Reg.r6 (mem_bi ~disp:4 ~scale:4 Reg.r0 Reg.r4);
      add Reg.r5 Reg.r6;
      ld Reg.r6 (mem_bi ~disp:(-128) ~scale:4 Reg.r0 Reg.r4);
      add Reg.r5 Reg.r6;
      ld Reg.r6 (mem_bi ~disp:128 ~scale:4 Reg.r0 Reg.r4);
      add Reg.r5 Reg.r6;
      shri Reg.r5 2;
      st (mem_bi ~scale:4 Reg.r0 Reg.r4) Reg.r5;
      addi Reg.r3 1;
      jmp "cols";
      label "cdone";
      addi Reg.r2 1;
      jmp "rows";
      label "rdone";
      pop Reg.r6;
      ret;
    ]

(* Histogram: data-dependent addressing that no static analysis can
   prove in bounds (the masking is the program's own sanitization). *)
let hist_kernel =
  func "hist_kernel"
    [
      movi Reg.r3 0;
      label "head";
      cmp Reg.r3 Reg.r1;
      jcc Insn.Ge "done";
      ld Reg.r4 (mem_bi ~scale:4 Reg.r0 Reg.r3);
      andi Reg.r4 63;
      ld Reg.r5 (mem_bi ~scale:4 Reg.r2 Reg.r4);
      addi Reg.r5 1;
      st (mem_bi ~scale:4 Reg.r2 Reg.r4) Reg.r5;
      addi Reg.r3 1;
      jmp "head";
      label "done";
      ret;
    ]

(* Byte-granularity string processing: W1 accesses and a branch per
   element, the interpreter/codec profile. *)
let strproc_kernel =
  func "strproc_kernel"
    [
      movi Reg.r2 0;
      label "head";
      cmp Reg.r2 Reg.r1;
      jcc Insn.Ge "done";
      ldb Reg.r3 (mem_bi Reg.r0 Reg.r2);
      testi Reg.r3 1;
      jcc Insn.Eq "even";
      binopi Insn.Xor Reg.r3 0x20;
      stb (mem_bi Reg.r0 Reg.r2) Reg.r3;
      jmp "next";
      label "even";
      addi Reg.r3 1;
      stb (mem_bi Reg.r0 Reg.r2) Reg.r3;
      label "next";
      addi Reg.r2 1;
      jmp "head";
      label "done";
      ret;
    ]

(* Canary-framed recursion (game-tree search profile). *)
let recurse_fn =
  func "recurse"
    (Abi.frame_enter ~canary:true ~locals:16 ()
    @ [
        cmpi Reg.r0 1;
        jcc Insn.Le "base";
        st (Abi.local 16 0) Reg.r0;
        subi Reg.r0 1;
        call "recurse";
        ld Reg.r1 (Abi.local 16 0);
        add Reg.r0 Reg.r1;
        jmp "out";
        label "base";
        movi Reg.r0 1;
        label "out";
      ]
    @ Abi.frame_leave ~canary:true ~locals:16 ())

(* Canary-framed call chain work_<depth> -> ... -> work_1. *)
let work_chain depth seed =
  let mk d =
    let body =
      if d = 1 then
        [
          sti (Abi.local 16 0) (seed land 63);
          ld Reg.r1 (Abi.local 16 0);
          add Reg.r0 Reg.r1;
          muli Reg.r0 2;
          addi Reg.r0 3;
        ]
      else
        [
          st (Abi.local 16 0) Reg.r0;
          addi Reg.r0 1;
          call (Printf.sprintf "work_%d" (d - 1));
          ld Reg.r1 (Abi.local 16 0);
          add Reg.r0 Reg.r1;
        ]
    in
    func
      (Printf.sprintf "work_%d" d)
      (Abi.frame_enter ~canary:true ~locals:16 ()
      @ body
      @ Abi.frame_leave ~canary:true ~locals:16 ())
  in
  List.init depth (fun i -> mk (i + 1))

(* Once-run phase functions: code volume with little execution time. *)
let phase_funcs n seed =
  List.init n (fun i ->
      let k = (seed + (i * 37)) land 0xFF in
      func
        (Printf.sprintf "phase_%d" i)
        [
          addi Reg.r0 k;
          cmpi Reg.r0 128;
          jcc Insn.Lt "small";
          binopi Insn.Xor Reg.r0 (k lor 1);
          shri Reg.r0 1;
          jmp "out";
          label "small";
          muli Reg.r0 3;
          addi Reg.r0 (i land 15);
          label "out";
          ret;
        ])

(* A cold function carrying a literal pool (data in code). *)
let litpool_fn bytes =
  let blob = String.init bytes (fun i -> Char.chr (0xF1 + (i mod 13))) in
  func "littab" [ movi Reg.r0 0; ret; label "pool"; Bytes blob ]

(* ---- the dlopen'd solver plugin (cactusADM-style) ---- *)

let solver_plugin name stages =
  let stage i =
    let body =
      match i mod 3 with
      | 0 ->
        (* streaming pass *)
        [
          movi Reg.r2 0;
          label "h";
          cmp Reg.r2 Reg.r1;
          jcc Insn.Ge "d";
          ld Reg.r3 (mem_bi ~scale:4 Reg.r0 Reg.r2);
          addi Reg.r3 (i + 1);
          st (mem_bi ~scale:4 Reg.r0 Reg.r2) Reg.r3;
          addi Reg.r2 1;
          jmp "h";
          label "d";
          ret;
        ]
      | 1 ->
        (* reduction *)
        [
          movi Reg.r2 0;
          movi Reg.r3 0;
          label "h";
          cmp Reg.r2 Reg.r1;
          jcc Insn.Ge "d";
          ld Reg.r4 (mem_bi ~scale:4 Reg.r0 Reg.r2);
          add Reg.r3 Reg.r4;
          addi Reg.r2 2;
          jmp "h";
          label "d";
          st (mem_b ~disp:0 Reg.r0) Reg.r3;
          ret;
        ]
      | _ ->
        (* branchy scalar pass *)
        [
          ld Reg.r2 (mem_b ~disp:0 Reg.r0);
          cmpi Reg.r2 0;
          jcc Insn.Ge "pos";
          I (Jt_asm.Sinsn.Sneg Reg.r2);
          label "pos";
          binopi Insn.Xor Reg.r2 (i * 3);
          andi Reg.r2 0xFFFF;
          st (mem_b ~disp:4 Reg.r0) Reg.r2;
          ret;
        ]
    in
    func (Printf.sprintf "stage_%d" i) body
  in
  let solve =
    func ~exported:true "solve"
      ([ push Reg.r6; push Reg.r7; mov Reg.r6 Reg.r0; mov Reg.r7 Reg.r1 ]
      @ List.concat
          (List.init stages (fun i ->
               [
                 mov Reg.r0 Reg.r6;
                 mov Reg.r1 Reg.r7;
                 call (Printf.sprintf "stage_%d" i);
               ]))
      @ [ ld Reg.r0 (mem_b ~disp:0 Reg.r6); pop Reg.r7; pop Reg.r6; ret ])
  in
  build ~name ~kind:Jt_obj.Objfile.Shared ~deps:[ "libc.so" ]
    (solve :: List.init stages stage)

(* ---- main program ---- *)

let rep n item = List.concat (List.init n (fun _ -> item))

let build ?(kind = Jt_obj.Objfile.Exec_nonpic) (s : Sheet.t) =
  let pic = kind <> Jt_obj.Objfile.Exec_nonpic in
  let seed = seed_of s.s_name in
  (* When the computation lives in a dlopen'd solver (cactusADM), the
     main executable is just a thin driver: the language-runtime work
     happens inside the plugin. *)
  let thin_driver = s.s_dlopen_solver > 0 in
  let has_cxx = (s.s_lang = Cxx || s.s_lang = Mixed_cf) && not thin_driver in
  let has_fortran = (s.s_lang = Fortran || s.s_lang = Mixed_cf) && not thin_driver in
  let needs_chase = s.s_chase_steps > 0 in
  let needs_b = s.s_memlib_calls > 0 || s.s_qsort in
  let solver_name = s.s_name ^ ".solver.so" in
  let datas =
    [ data "dispatch_tbl" [ Dfuncptr "op0"; Dfuncptr "op1"; Dfuncptr "op2"; Dfuncptr "op3" ] ]
    @ (if s.s_hist > 0 then [ data "histbuf" [ Dspace 256 ] ] else [])
    @ (if s.s_computed_goto > 0 then
         [
           data "goto_tbl"
             (List.init s.s_computed_goto (fun i ->
                  Dlabelptr ("goto_kernel", Printf.sprintf "g%d" i)));
         ]
       else [])
    @
    if s.s_dlopen_solver > 0 then
      [
        data "solver_mod" [ Dbytes (solver_name ^ "\x00") ];
        data "solver_sym" [ Dbytes "solve\x00" ];
      ]
    else []
  in
  (* --- main body --- *)
  let setup =
    [
      movi Reg.r0 (s.s_elems * 4);
      call_import "malloc";
      mov Reg.r7 Reg.r0;
      movi Reg.r6 (seed land 0xFF);
    ]
    @ (if needs_chase then
         [ movi Reg.r0 (chase_elems * 4); call_import "malloc"; mov Reg.r8 Reg.r0 ]
       else [])
    @ (if needs_b then
         [ movi Reg.r0 (s.s_elems * 4); call_import "malloc"; mov Reg.r12 Reg.r0 ]
       else [])
    @ (if has_cxx then
         [
           movi Reg.r0 8;
           call_import "malloc";
           mov Reg.r11 Reg.r0;
           ld Reg.r1 (mem_got "vt_widget");
           st (mem_b ~disp:0 Reg.r11) Reg.r1;
           sti (mem_b ~disp:4 Reg.r11) (5 + (seed land 7));
         ]
       else [])
    @ (if s.s_dlopen_solver > 0 then
         [
           addr_of_data ~pic Reg.r0 "solver_mod";
           syscall Sysno.dlopen;
           addr_of_data ~pic Reg.r1 "solver_sym";
           syscall Sysno.dlsym;
           mov Reg.r10 Reg.r0;
         ]
       else [])
    (* init a[i] = i*3+1 *)
    @ [
        movi Reg.r1 0;
        label "ia";
        cmpi Reg.r1 s.s_elems;
        jcc Insn.Ge "ia_done";
        mov Reg.r2 Reg.r1;
        muli Reg.r2 3;
        addi Reg.r2 1;
        st (mem_bi ~scale:4 Reg.r7 Reg.r1) Reg.r2;
        addi Reg.r1 1;
        jmp "ia";
        label "ia_done";
      ]
    (* init chase permutation c[i] = (i*7+3) mod 256 *)
    @ (if needs_chase then
         [
           movi Reg.r1 0;
           label "ic";
           cmpi Reg.r1 chase_elems;
           jcc Insn.Ge "ic_done";
           mov Reg.r2 Reg.r1;
           muli Reg.r2 7;
           addi Reg.r2 3;
           andi Reg.r2 (chase_elems - 1);
           st (mem_bi ~scale:4 Reg.r8 Reg.r1) Reg.r2;
           addi Reg.r1 1;
           jmp "ic";
           label "ic_done";
         ]
       else [])
    (* run every phase function once *)
    @ List.concat
        (List.init s.s_code_bloat (fun i ->
             [ mov Reg.r0 Reg.r6; call (Printf.sprintf "phase_%d" i); add Reg.r6 Reg.r0 ]))
    @ if s.s_literal_pool > 0 then [ call "littab" ] else []
  in
  let per_unit =
    rep s.s_stream_loops
      [ mov Reg.r0 Reg.r7; movi Reg.r1 s.s_elems; call "stream_kernel" ]
    @ (if s.s_chase_steps > 0 then
         [
           mov Reg.r0 Reg.r8;
           movi Reg.r1 chase_elems;
           movi Reg.r2 s.s_chase_steps;
           call "chase_kernel";
           add Reg.r6 Reg.r0;
         ]
       else [])
    @ List.concat
        (List.init s.s_alu_calls (fun i ->
             [
               mov Reg.r0 Reg.r9;
               addi Reg.r0 (i + (seed land 31));
               call_import (if i mod 3 = 2 then "isqrt" else "poly");
               add Reg.r6 Reg.r0;
             ]))
    @ List.concat
        (List.init s.s_ind_calls (fun i ->
             [
               mov Reg.r3 Reg.r9;
               addi Reg.r3 i;
               andi Reg.r3 3;
               addr_of_data ~pic Reg.r2 "dispatch_tbl";
               ld Reg.r4 (mem_bi ~scale:4 Reg.r2 Reg.r3);
               mov Reg.r0 Reg.r6;
               call_reg Reg.r4;
               add Reg.r6 Reg.r0;
             ]))
    @ List.concat
        (List.init s.s_switches (fun i ->
             [
               mov Reg.r0 Reg.r6;
               mov Reg.r1 Reg.r9;
               addi Reg.r1 i;
               andi Reg.r1 3;
               call "switch_kernel";
               add Reg.r6 Reg.r0;
             ]))
    @ (if s.s_call_depth > 0 then
         rep 2
           [
             mov Reg.r0 Reg.r9;
             call (Printf.sprintf "work_%d" s.s_call_depth);
             add Reg.r6 Reg.r0;
           ]
       else [])
    @ rep s.s_stencil
        [ mov Reg.r0 Reg.r7; movi Reg.r1 (s.s_elems / 32); call "stencil_kernel" ]
    @ rep s.s_hist
        [
          mov Reg.r0 Reg.r7;
          movi Reg.r1 (min s.s_elems 256);
          addr_of_data ~pic Reg.r2 "histbuf";
          call "hist_kernel";
          addr_of_data ~pic Reg.r2 "histbuf";
          ld Reg.r3 (mem_b ~disp:0 Reg.r2);
          add Reg.r6 Reg.r3;
        ]
    @ rep s.s_strproc
        [ mov Reg.r0 Reg.r7; movi Reg.r1 256; call "strproc_kernel" ]
    @ (if s.s_recurse > 0 then
         [ movi Reg.r0 s.s_recurse; call "recurse"; add Reg.r6 Reg.r0 ]
       else [])
    @ rep s.s_memlib_calls
        [
          mov Reg.r0 Reg.r12;
          mov Reg.r1 Reg.r7;
          movi Reg.r2 (min s.s_elems 128);
          call_import "copy_words";
        ]
    @ (if s.s_qsort then
         [
           mov Reg.r0 Reg.r12;
           movi Reg.r1 8;
           addr_of_func ~pic Reg.r2 "cmp_fn";
           call_import "qsort";
           ld Reg.r3 (mem_b ~disp:0 Reg.r12);
           add Reg.r6 Reg.r3;
         ]
       else [])
    @ rep s.s_mallocs
        [
          movi Reg.r0 48;
          call_import "malloc";
          mov Reg.r5 Reg.r0;
          sti (mem_b ~disp:0 Reg.r5) 7;
          mov Reg.r0 Reg.r5;
          call_import "free";
        ]
    @ (if has_cxx then
         [
           mov Reg.r0 Reg.r11;
           mov Reg.r1 Reg.r9;
           andi Reg.r1 1;
           call_import "vcall";
           add Reg.r6 Reg.r0;
         ]
       else [])
    @ (if has_fortran then
         [
           mov Reg.r0 Reg.r7;
           movi Reg.r1 s.s_elems;
           movi Reg.r2 3;
           call_import "arr_scale";
           mov Reg.r0 Reg.r7;
           movi Reg.r1 s.s_elems;
           call_import "arr_sum";
           add Reg.r6 Reg.r0;
         ]
       else [])
    @ (if s.s_computed_goto > 0 then
         [
           mov Reg.r0 Reg.r9;
           andi Reg.r0 (s.s_computed_goto - 1);
           call "goto_kernel";
           add Reg.r6 Reg.r0;
         ]
       else [])
    @
    if s.s_dlopen_solver > 0 then
      [
        mov Reg.r0 Reg.r7;
        movi Reg.r1 (min s.s_elems 48);
        call_reg Reg.r10;
        add Reg.r6 Reg.r0;
      ]
    else []
  in
  let main =
    func "main"
      (setup
      @ [ movi Reg.r9 0; label "unit_head"; cmpi Reg.r9 s.s_units;
          jcc Insn.Ge "unit_done" ]
      @ per_unit
      @ [
          addi Reg.r9 1;
          jmp "unit_head";
          label "unit_done";
          mov Reg.r0 Reg.r6;
          call_import "print_int";
          movi Reg.r0 0;
          syscall Sysno.exit_;
        ])
  in
  let funcs =
    [ main ]
    @ op_funcs seed
    @ [ cmp_fn; stream_kernel (3 + (seed land 1)); chase_leaf;
        chase_kernel ~leafy:(s.s_ind_calls >= 6 || s.s_switches >= 6);
        switch_kernel ~pic ]
    @ (if s.s_computed_goto > 0 then [ goto_kernel ~pic s.s_computed_goto ] else [])
    @ (if s.s_stencil > 0 then [ stencil_kernel ] else [])
    @ (if s.s_hist > 0 then [ hist_kernel ] else [])
    @ (if s.s_strproc > 0 then [ strproc_kernel ] else [])
    @ (if s.s_recurse > 0 then [ recurse_fn ] else [])
    @ work_chain s.s_call_depth seed
    @ phase_funcs s.s_code_bloat seed
    @ if s.s_literal_pool > 0 then [ litpool_fn s.s_literal_pool ] else []
  in
  let w_main =
    Jt_asm.Builder.build ~name:s.s_name ~kind ~deps:(deps_of s)
      ~features:(features_of s.s_lang) ~entry:"main" ~datas funcs
  in
  let plugins =
    if s.s_dlopen_solver > 0 then [ solver_plugin solver_name s.s_dlopen_solver ]
    else []
  in
  { w_sheet = s; w_main; w_registry = (w_main :: plugins) @ Stdlibs.all }

let run_native (w : t) =
  Jt_vm.Vm.run_native ~registry:w.w_registry ~main:w.w_sheet.s_name ()

(* The memo is process-global shared state; pool jobs may call
   [expected_output] concurrently, and an unsynchronized [Hashtbl] can
   corrupt itself under parallel resize.  The native run itself happens
   outside the lock — worst case two domains race to compute the same
   (deterministic) entry and one write wins. *)
let memo : (string, string) Hashtbl.t = Hashtbl.create 32

let memo_lock = Mutex.create ()

let expected_output (w : t) =
  let key =
    w.w_sheet.s_name
    ^ match w.w_main.kind with Jt_obj.Objfile.Exec_nonpic -> "/np" | _ -> "/pic"
  in
  let cached =
    Mutex.lock memo_lock;
    let v = Hashtbl.find_opt memo key in
    Mutex.unlock memo_lock;
    v
  in
  match cached with
  | Some s -> Some s
  | None -> (
    let r = run_native w in
    match r.r_status with
    | Jt_vm.Vm.Exited 0 ->
      Mutex.lock memo_lock;
      Hashtbl.replace memo key r.r_output;
      Mutex.unlock memo_lock;
      Some r.r_output
    | _ -> None)
