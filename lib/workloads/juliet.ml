open Jt_isa
open Jt_asm.Builder
open Jt_asm.Builder.Dsl

type category =
  | Heap_heap
  | Heap_heap_slack
  | Stack_heap
  | Heap_stack_contig
  | Heap_stack_direct

type case = { c_id : int; c_cat : category; c_expected : int }

let cases =
  let mk cat n expected start =
    List.init n (fun i -> { c_id = start + i; c_cat = cat; c_expected = expected })
  in
  mk Heap_heap 312 1 0
  @ mk Heap_heap_slack 24 2 312
  @ mk Stack_heap 144 1 336
  @ mk Heap_stack_contig 48 1 480
  @ mk Heap_stack_direct 96 1 528

let exit0 = [ movi Reg.r0 0; syscall Sysno.exit_ ]

(* Every case: main calls a victim function; the victim performs the
   (possibly buggy) operation; the program always runs to completion
   (sanitizers are evaluated in recover mode). *)
let build_case (c : case) ~bad =
  let i = c.c_id in
  let name = Printf.sprintf "juliet_%03d_%s" i (if bad then "bad" else "good") in
  let victim =
    match c.c_cat with
    | Heap_heap ->
      (* dst and neighbour blocks; fill dst with n words; bad fills one
         extra, landing in the redzone. *)
      let sz = 8 * (2 + (i mod 6)) in
      let words = (sz / 4) + if bad then 1 else 0 in
      func "victim"
        [
          movi Reg.r0 sz;
          call_import "malloc";
          mov Reg.r6 Reg.r0;
          movi Reg.r0 sz;
          call_import "malloc";
          mov Reg.r7 Reg.r0;
          movi Reg.r1 0;
          label "fill";
          cmpi Reg.r1 words;
          jcc Insn.Ge "done";
          st (mem_bi ~scale:4 Reg.r6 Reg.r1) Reg.r1;
          addi Reg.r1 1;
          jmp "fill";
          label "done";
          ld Reg.r0 (mem_b ~disp:0 Reg.r7);
          ret;
        ]
    | Heap_heap_slack ->
      (* size ≡ 4 (mod 8): the allocator rounds up, leaving 4 slack
         bytes.  Bad variant has two bugs: a write into the slack (only
         byte-granular redzones see it) and a write past the rounded
         end (everyone sees it). *)
      let sz = 12 + (8 * (i mod 4)) in
      func "victim"
        ([
           movi Reg.r0 sz;
           call_import "malloc";
           mov Reg.r6 Reg.r0;
           movi Reg.r2 65;
         ]
        @ (if bad then
             [
               (* bug 1: one byte into the alignment slack *)
               I
                 (Jt_asm.Sinsn.Sstore
                    (Insn.W1, mem_b ~disp:(sz + 1) Reg.r6, Jt_asm.Sinsn.Sreg Reg.r2));
               (* bug 2: past the rounded-up end *)
               I
                 (Jt_asm.Sinsn.Sstore
                    (Insn.W1, mem_b ~disp:(sz + 9) Reg.r6, Jt_asm.Sinsn.Sreg Reg.r2));
             ]
           else
             [
               I
                 (Jt_asm.Sinsn.Sstore
                    (Insn.W1, mem_b ~disp:(sz - 1) Reg.r6, Jt_asm.Sinsn.Sreg Reg.r2));
             ])
        @ [ ldb Reg.r0 (mem_b ~disp:0 Reg.r6); ret ])
    | Stack_heap ->
      (* copy a stack array into an undersized heap destination *)
      let dst_words = 2 + (i mod 4) in
      let src_words = dst_words + if bad then 2 else 0 in
      let locals = 48 in
      func "victim"
        (Abi.frame_enter ~canary:true ~locals ()
        @ [
            movi Reg.r0 (dst_words * 4);
            call_import "malloc";
            mov Reg.r2 Reg.r0;
            (* init stack source *)
            movi Reg.r1 0;
            label "init";
            cmpi Reg.r1 8;
            jcc Insn.Ge "initd";
            lea Reg.r3 (mem_b ~disp:(-locals) Reg.fp);
            st (mem_bi ~scale:4 Reg.r3 Reg.r1) Reg.r1;
            addi Reg.r1 1;
            jmp "init";
            label "initd";
            (* copy src_words into dst *)
            movi Reg.r1 0;
            label "copy";
            cmpi Reg.r1 src_words;
            jcc Insn.Ge "copyd";
            lea Reg.r3 (mem_b ~disp:(-locals) Reg.fp);
            ld Reg.r4 (mem_bi ~scale:4 Reg.r3 Reg.r1);
            st (mem_bi ~scale:4 Reg.r2 Reg.r1) Reg.r4;
            addi Reg.r1 1;
            jmp "copy";
            label "copyd";
            ld Reg.r0 (mem_b ~disp:0 Reg.r2);
          ]
        @ Abi.frame_leave ~canary:true ~locals ())
    | Heap_stack_contig ->
      (* a heap walk that intends to reach the stack: the first
         out-of-bounds write crosses the right redzone *)
      let sz = 8 * (2 + (i mod 5)) in
      let words = (sz / 4) + if bad then 2 else 0 in
      func "victim"
        [
          movi Reg.r0 sz;
          call_import "malloc";
          mov Reg.r6 Reg.r0;
          movi Reg.r1 0;
          label "walk";
          cmpi Reg.r1 words;
          jcc Insn.Ge "done";
          st (mem_bi ~scale:4 Reg.r6 Reg.r1) Reg.r1;
          addi Reg.r1 1;
          jmp "walk";
          label "done";
          ld Reg.r0 (mem_b ~disp:0 Reg.r6);
          ret;
        ]
    | Heap_stack_direct ->
      (* a corrupted pointer landing in the caller's frame, missing
         both redzones and the canary: invisible to every scheme under
         test (the shared 96 false negatives) *)
      let off = 8 + (4 * (i mod 3)) in
      let locals = 24 in
      func "victim"
        (Abi.frame_enter ~canary:true ~locals ()
        @ [
            movi Reg.r0 32;
            call_import "malloc";
            mov Reg.r2 Reg.r0;
            sti (mem_b ~disp:0 Reg.r2) 5;
            movi Reg.r3 0x41414141;
          ]
        @ (if bad then
             [ lea Reg.r1 (mem_b ~disp:off Reg.fp); st (mem_b ~disp:0 Reg.r1) Reg.r3 ]
           else
             [
               lea Reg.r1 (mem_b ~disp:(-locals) Reg.fp);
               st (mem_b ~disp:0 Reg.r1) Reg.r3;
             ])
        @ [ ld Reg.r0 (mem_b ~disp:0 Reg.r2) ]
        @ Abi.frame_leave ~canary:true ~locals ())
  in
  build ~name ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ] ~entry:"main"
    [
      victim;
      func "main"
        ([ call "victim"; call_import "print_int" ] @ exit0);
    ]

let registry_for m = [ m; Stdlibs.libc ]

type detector = Jasan_hybrid | Jasan_dyn | Valgrind

type tally = {
  t_true_pos : int;
  t_false_neg : int;
  t_true_neg : int;
  t_false_pos : int;
}

(* Distinct violation sites: several loop iterations tripping the same
   check count once, like one ASan report per instruction. *)
let distinct_sites (r : Jt_vm.Vm.result) =
  List.length
    (List.sort_uniq compare (List.map (fun v -> v.Jt_vm.Vm.v_pc) r.r_violations))

(* libc.so and ld.so rules are the same for every case: analyze once. *)
let precomputed_lib_rules =
  lazy
    (let tool, _ = Jt_jasan.Jasan.create () in
     Janitizer.Driver.analyze_all ~tool [ Stdlibs.libc; Jt_loader.Loader.ld_so ])

let run_detector det m =
  let registry = registry_for m in
  let main = m.Jt_obj.Objfile.name in
  match det with
  | Valgrind -> Jt_baselines.Valgrind_like.run ~registry ~main ()
  | Jasan_hybrid | Jasan_dyn ->
    let hybrid = det = Jasan_hybrid in
    let precomputed = if hybrid then Lazy.force precomputed_lib_rules else [] in
    let tool, _ = Jt_jasan.Jasan.create () in
    (Janitizer.Driver.run ~hybrid ~precomputed ~tool ~registry ~main ()).o_result

let tally_cases det ~build ~expected selected =
  let tally = ref { t_true_pos = 0; t_false_neg = 0; t_true_neg = 0; t_false_pos = 0 } in
  List.iter
    (fun c ->
      let bad_r = run_detector det (build c ~bad:true) in
      let good_r = run_detector det (build c ~bad:false) in
      let t = !tally in
      let t =
        if distinct_sites bad_r >= expected c then
          { t with t_true_pos = t.t_true_pos + 1 }
        else { t with t_false_neg = t.t_false_neg + 1 }
      in
      let t =
        if distinct_sites good_r = 0 then { t with t_true_neg = t.t_true_neg + 1 }
        else { t with t_false_pos = t.t_false_pos + 1 }
      in
      tally := t)
    selected;
  !tally

let limited limit l =
  match limit with
  | None -> l
  | Some n -> List.filteri (fun k _ -> k < n) l

let evaluate ?limit det =
  tally_cases det ~build:build_case
    ~expected:(fun c -> c.c_expected)
    (limited limit cases)

(* ---- sibling families: CWE-124 / 415 / 416 / 121 ---- *)

type family = Cwe124 | Cwe415 | Cwe416 | Cwe121

let family_name = function
  | Cwe124 -> "CWE-124"
  | Cwe415 -> "CWE-415"
  | Cwe416 -> "CWE-416"
  | Cwe121 -> "CWE-121"

let families = [ Cwe124; Cwe415; Cwe416; Cwe121 ]

type fcase = {
  fc_id : int;
  fc_fam : family;
  fc_expected : int;
  fc_kind : string;
}

let family_cases fam =
  let mk n kind =
    List.init n (fun i -> { fc_id = i; fc_fam = fam; fc_expected = 1; fc_kind = kind })
  in
  match fam with
  | Cwe124 -> mk 48 "heap-buffer-overflow"
  | Cwe415 -> mk 48 "double-free"
  | Cwe416 -> mk 96 "heap-use-after-free"
  | Cwe121 -> mk 72 "stack-buffer-overflow"

let all_family_cases = List.concat_map family_cases families

let build_family_case (c : fcase) ~bad =
  let i = c.fc_id in
  let name =
    Printf.sprintf "juliet_%s_%03d_%s"
      (String.lowercase_ascii (family_name c.fc_fam))
      i
      (if bad then "bad" else "good")
  in
  let victim =
    match c.fc_fam with
    | Cwe124 ->
      (* buffer underwrite: a byte store at [base - 1] lands in the
         left redzone (both granularities poison it fully) *)
      let sz = 8 * (1 + (i mod 6)) in
      let disp = if bad then -1 else 0 in
      func "victim"
        [
          movi Reg.r0 sz;
          call_import "malloc";
          mov Reg.r6 Reg.r0;
          movi Reg.r2 65;
          stb (mem_b ~disp Reg.r6) Reg.r2;
          ldb Reg.r0 (mem_b ~disp:0 Reg.r6);
          ret;
        ]
    | Cwe415 ->
      (* double free, including zero-size blocks (i mod 7 = 0): the
         second free of the same base must report exactly once *)
      let sz = 8 * (i mod 7) in
      func "victim"
        ([
           movi Reg.r0 sz;
           call_import "malloc";
           mov Reg.r6 Reg.r0;
           mov Reg.r0 Reg.r6;
           call_import "free";
         ]
        @ (if bad then [ mov Reg.r0 Reg.r6; call_import "free" ] else [])
        @ [ movi Reg.r0 7; ret ])
    | Cwe416 ->
      (* use after free; freed payload stays [Heap_freed] in quarantine,
         so the dangling access is caught whichever variant *)
      let sz = 8 * (1 + (i mod 5)) in
      (match i mod 3 with
      | 0 ->
        (* load through the dangling pointer *)
        func "victim"
          ([ movi Reg.r0 sz; call_import "malloc"; mov Reg.r6 Reg.r0;
             sti (mem_b ~disp:0 Reg.r6) 7 ]
          @ (if bad then
               [ mov Reg.r0 Reg.r6; call_import "free";
                 ld Reg.r0 (mem_b ~disp:0 Reg.r6) ]
             else
               [ ld Reg.r7 (mem_b ~disp:0 Reg.r6); mov Reg.r0 Reg.r6;
                 call_import "free"; mov Reg.r0 Reg.r7 ])
          @ [ ret ])
      | 1 ->
        (* store through the dangling pointer *)
        func "victim"
          ([ movi Reg.r0 sz; call_import "malloc"; mov Reg.r6 Reg.r0 ]
          @ (if bad then
               [ mov Reg.r0 Reg.r6; call_import "free";
                 sti (mem_b ~disp:0 Reg.r6) 7 ]
             else
               [ sti (mem_b ~disp:0 Reg.r6) 7; mov Reg.r0 Reg.r6;
                 call_import "free" ])
          @ [ movi Reg.r0 7; ret ])
      | _ ->
        (* realloc moves the block; the stale pre-realloc pointer is
           dangling even though the data survived the copy *)
        func "victim"
          ([
             movi Reg.r0 sz;
             call_import "malloc";
             mov Reg.r6 Reg.r0;
             sti (mem_b ~disp:0 Reg.r6) 7;
             mov Reg.r0 Reg.r6;
             movi Reg.r1 (2 * sz);
             call_import "realloc";
             mov Reg.r7 Reg.r0;
           ]
          @ [ ld Reg.r0 (mem_b ~disp:0 (if bad then Reg.r6 else Reg.r7)) ]
          @ [ ret ]))
    | Cwe121 ->
      (* stack store into the canary slot through a computed pointer —
         [lea]-based so the frame policy cannot claim it.  The stored
         value is the canary's own, so natively the epilogue check
         passes and the program exits 0: only shadow-aware tools see
         anything at all. *)
      let locals = 24 + (8 * (i mod 3)) in
      if i mod 2 = 0 then
        func "victim"
          (Abi.frame_enter ~canary:true ~locals ()
          @ [
              load_canary Reg.r5;
              lea Reg.r1 (mem_b ~disp:(-4) Reg.fp);
              st (mem_b ~disp:(if bad then 0 else -8) Reg.r1) Reg.r5;
              movi Reg.r0 7;
            ]
          @ Abi.frame_leave ~canary:true ~locals ())
      else
        (* loop walking the locals upward; the bad bound includes the
           canary word *)
        let words = (locals / 4) + if bad then 0 else -1 in
        func "victim"
          (Abi.frame_enter ~canary:true ~locals ()
          @ [
              load_canary Reg.r5;
              lea Reg.r3 (mem_b ~disp:(-locals) Reg.fp);
              movi Reg.r1 0;
              label "walk";
              cmpi Reg.r1 words;
              jcc Insn.Ge "walkd";
              st (mem_bi ~scale:4 Reg.r3 Reg.r1) Reg.r5;
              addi Reg.r1 1;
              jmp "walk";
              label "walkd";
              movi Reg.r0 7;
            ]
          @ Abi.frame_leave ~canary:true ~locals ())
  in
  build ~name ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ] ~entry:"main"
    [ victim; func "main" ([ call "victim"; call_import "print_int" ] @ exit0) ]

let evaluate_family ?limit det fam =
  tally_cases det ~build:build_family_case
    ~expected:(fun c -> c.fc_expected)
    (limited limit (family_cases fam))
