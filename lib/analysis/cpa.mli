(** Interprocedural code-pointer provenance analysis (CPA).

    Computes, for every indirect call site of a module, a sound
    over-approximation of the set of function entries its operand can
    hold at run time — or Top when the pointer's provenance cannot be
    bounded.  Values live in the finite lattice

        Bot  <=  Entries S  <=  Top

    with S a set of discovered function entries capped at {!max_set}
    elements (a larger set snaps to Top).  Sets are seeded wherever a
    tracked entry address is materialized (immediate moves,
    pc-relative/absolute leas, 4-byte loads from in-image code-pointer
    tables with VSA-bounded indices) and flow through register copies
    and the function's entry-sp-relative stack slots.  Direct-call
    argument registers flow into "closed" callees (not exported, not
    address-taken, not jump-table targets, not the program entry) via
    an outer fixpoint.

    The Top-degradation contract: consumers (the per-site CFI policy,
    {!Jt_cfg.Callgraph}, {!Interproc}) must treat an unresolved site as
    "may target any entry" — precision is only ever added on top of the
    sound any-entry baseline, never traded against it.  The contract is
    continuously checked by the runtime refinement oracle in the test
    suite: every dynamically observed indirect-call target must be a
    member of its site's resolved set. *)

val max_set : int
(** Target sets larger than this degrade to Top (16). *)

type site = {
  cs_fn : int;  (** entry of the enclosing function *)
  cs_site : int;  (** indirect-call instruction address *)
  cs_targets : int list option;
      (** sorted resolved entries; [None] when the site is Top *)
  cs_witness : int;
      (** address of the earliest seeding instruction whose value
          reaches the site (provenance witness); [0] when Top *)
}

type t

val analyze :
  m:Jt_obj.Objfile.t ->
  entries:int list ->
  code_ptrs:int list ->
  jump_table_targets:int list ->
  (Jt_cfg.Cfg.fn * Vsa.t) list ->
  t
(** [analyze ~m ~entries ~code_ptrs ~jump_table_targets fns] runs the
    pass over every function (paired with its VSA fixpoint).
    [entries] are the module's discovered function entries (the tracked
    universe), [code_ptrs] the raw code-pointer-scan hits and
    [jump_table_targets] the recovered jump-table targets — both used
    as address-taken evidence that keeps a function's entry state
    unrefined. *)

val sites : t -> site list
(** All indirect call sites, sorted by site address. *)

val resolve : t -> int -> int list option
(** [resolve t site] is the resolved target set of the indirect call at
    [site], or [None] when the site is Top or unknown — the shape
    expected by {!Jt_cfg.Callgraph.build}'s [resolve]. *)

val site_targets : t -> int -> (int list * int) option
(** Resolved targets plus the provenance witness, for fact dumps. *)

val export : t -> site list
val import : site list -> t
(** Round-trip through the serialized form ({!Jt_ir.Ir.Cpa}); queries on
    the import answer identically to the original. *)
