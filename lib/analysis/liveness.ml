open Jt_isa
open Jt_cfg

let reg_mask rs = List.fold_left (fun m r -> m lor (1 lsl Reg.index r)) 0 rs

let mask_regs m =
  List.filter (fun r -> m land (1 lsl Reg.index r) <> 0) Reg.all

let all_regs = reg_mask Reg.all

(* Live-out at function exits: return value, stack registers, and
   callee-saved registers the caller expects preserved. *)
let exit_live = reg_mask (Reg.r0 :: Reg.sp :: Reg.callee_saved)

let arg_regs = reg_mask [ Reg.r0; Reg.r1; Reg.r2 ]
let caller_saved_mask = reg_mask Reg.caller_saved

type t = {
  facts : (int, int * Flags.set) Hashtbl.t;  (* per-instruction live-before *)
  all_live : bool;
}

(* Per-instruction transfer.  Calls are summarized by convention, or by
   an inter-procedural clobber/read summary when one is supplied (the
   section 4.1.2 extension for convention-breaking modules). *)
let transfer ~call_summary (i : Insn.t) (live, flags) =
  match i with
  | Insn.Call t when call_summary t <> None ->
    let clobbers, reads = Option.get (call_summary t) in
    let live = (live land lnot clobbers) lor reads lor reg_mask [ Reg.sp ] in
    (live, Flags.empty)
  | Insn.Call _ | Insn.Call_ind _ ->
    let live = live land lnot caller_saved_mask in
    let live = live lor arg_regs lor reg_mask (Insn.uses i) in
    (live, Flags.empty)  (* callee clobbers flags; none live across *)
  | _ ->
    let defs = reg_mask (Insn.defs i) in
    let uses = reg_mask (Insn.uses i) in
    let live = (live land lnot defs) lor uses in
    let flags = Flags.union (Flags.diff flags (Insn.flags_def i)) (Insn.flags_use i) in
    (live, flags)

let analyze ?(call_summary = fun _ -> None) ?(exit_all_live = false)
    (fn : Cfg.fn) =
  let facts = Hashtbl.create 64 in
  let blocks = Cfg.fn_blocks fn in
  let live_in = Hashtbl.create 16 in
  (* live_in : block addr -> (reg mask, flag set) at block start *)
  List.iter (fun b -> Hashtbl.replace live_in b.Cfg.b_addr (0, Flags.empty)) blocks;
  let at_exit =
    (* When the module breaks the convention, a caller may consume any
       register — or even flags — the callee leaves behind. *)
    if exit_all_live then (all_regs, Flags.all) else (exit_live, Flags.empty)
  in
  let block_out b =
    match b.Cfg.b_term with
    | Cfg.Tret -> at_exit
    | Cfg.Thalt -> (0, Flags.empty)
    | Cfg.Tjmp_ind [] ->
      (* Unknown indirect-branch targets: assume everything live
         (section 3.3.2). *)
      (all_regs, Flags.all)
    | Cfg.Tjmp t when not (Hashtbl.mem fn.Cfg.f_blocks t) ->
      (* Tail call to another function. *)
      at_exit
    | Cfg.Tjmp _ | Cfg.Tjcc _ | Cfg.Tjmp_ind _ | Cfg.Tcall _ | Cfg.Tcall_ind _
    | Cfg.Tfall _ ->
      List.fold_left
        (fun (lr, lf) s ->
          match Hashtbl.find_opt live_in s with
          | Some (r, f) -> (lr lor r, Flags.union lf f)
          | None -> (all_regs, Flags.all))
        (0, Flags.empty) b.Cfg.b_succs
  in
  let changed = ref true in
  while !changed do
    changed := false;
    (* Backward: process in reverse address order for fast convergence. *)
    List.iter
      (fun b ->
        let out = block_out b in
        let acc = ref out in
        for k = Array.length b.Cfg.b_insns - 1 downto 0 do
          let info = b.Cfg.b_insns.(k) in
          acc := transfer ~call_summary info.Jt_disasm.Disasm.d_insn !acc
        done;
        let prev = Hashtbl.find live_in b.Cfg.b_addr in
        if prev <> !acc then begin
          Hashtbl.replace live_in b.Cfg.b_addr !acc;
          changed := true
        end)
      (List.rev blocks)
  done;
  (* Final pass: record per-instruction facts. *)
  List.iter
    (fun b ->
      let out = block_out b in
      let acc = ref out in
      for k = Array.length b.Cfg.b_insns - 1 downto 0 do
        let info = b.Cfg.b_insns.(k) in
        acc := transfer ~call_summary info.Jt_disasm.Disasm.d_insn !acc;
        Hashtbl.replace facts info.Jt_disasm.Disasm.d_addr !acc
      done)
    blocks;
  { facts; all_live = false }

let live_before t addr =
  if t.all_live then (all_regs, Flags.all)
  else
    match Hashtbl.find_opt t.facts addr with
    | Some f -> f
    | None -> (all_regs, Flags.all)

let dead_regs_before t addr =
  let live, _ = live_before t addr in
  List.filter
    (fun r ->
      (not (Reg.equal r Reg.sp))
      && (not (Reg.equal r Reg.fp))
      && live land (1 lsl Reg.index r) = 0)
    Reg.all

let flags_dead_before t addr =
  let _, flags = live_before t addr in
  Flags.is_empty flags

let conservative (_ : Cfg.fn) = { facts = Hashtbl.create 1; all_live = true }

(* Serialization.  The facts table is the analysis — there is nothing to
   replay — so export/import is a plain dump of (addr, regs, flags)
   triples, flag sets as their underlying bit masks. *)

let flags_of_bits bits =
  Flags.of_list
    (List.filter
       (fun f -> bits land ((Flags.singleton f :> int)) <> 0)
       [ Flags.Zf; Flags.Sf; Flags.Cf; Flags.Of ])

let export t =
  let facts =
    Hashtbl.fold
      (fun addr ((regs, flags) : int * Flags.set) acc ->
        (addr, regs, (flags :> int)) :: acc)
      t.facts []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  (t.all_live, facts)

let import ~all_live ~facts () =
  let tbl = Hashtbl.create (max 1 (List.length facts)) in
  List.iter
    (fun (addr, regs, bits) ->
      Hashtbl.replace tbl addr (regs, flags_of_bits bits))
    facts;
  { facts = tbl; all_live }
