open Jt_isa
open Jt_cfg

(* Code-pointer provenance analysis (CPA): for every indirect call site,
   a sound over-approximation of the function entries its operand can
   hold — or Top when the pointer's provenance cannot be bounded.

   Values form the finite lattice

       Bot  <=  Entries S  <=  Top        (S a set of function entries)

   seeded wherever a tracked entry address is materialized (immediate
   moves, pc-relative/absolute leas, loads of in-image code-pointer
   tables) and transferred through register copies and the function's
   entry-sp-relative stack slots (spill/reload), with VSA supplying the
   address algebra.  Anything unproven — including a set growing past
   [max_set] — degrades to Top, never to a dropped target: consumers
   (the per-site CFI policy, the call-graph, the interprocedural
   summaries) must fall back to their coarse behavior on Top.

   Soundness assumptions, documented in DESIGN.md §16 and continuously
   gated by the runtime refinement oracle (every dynamically observed
   indirect-call target must be in its site's set):
   - in-image tables read by the table rule are not mutated at run time
     (the benign-program assumption behind BinCFI-style scans);
   - stores through [Cst] (non-stack) addresses do not alias the
     function's entry-sp-relative slots, mirroring VSA's own
     Sprel/Cst region separation. *)

let max_set = 16

module Iset = Set.Make (Int)

type value = Bot | Entries of Iset.t * int (* seed witness *) | Top

let join_value a b =
  match (a, b) with
  | Bot, v | v, Bot -> v
  | Top, _ | _, Top -> Top
  | Entries (sa, wa), Entries (sb, wb) ->
    let s = Iset.union sa sb in
    if Iset.cardinal s > max_set then Top else Entries (s, min wa wb)

let equal_value a b =
  match (a, b) with
  | Bot, Bot | Top, Top -> true
  | Entries (sa, wa), Entries (sb, wb) -> wa = wb && Iset.equal sa sb
  | _ -> false

(* Abstract state: the register file plus the entry-sp-relative 4-byte
   stack slots known to hold a tracked value.  A slot absent from the
   map is unknown (Top); the map is sorted by offset so equality and
   join are canonical. *)
type state = { regs : value array; slots : (int * value) list }

let state_equal a b =
  (try Array.for_all2 equal_value a.regs b.regs with Invalid_argument _ -> false)
  && List.length a.slots = List.length b.slots
  && List.for_all2
       (fun (oa, va) (ob, vb) -> oa = ob && equal_value va vb)
       a.slots b.slots

(* Slots: a key unknown on either side is unknown after the join. *)
let join_slots a b =
  List.filter_map
    (fun (o, va) ->
      match List.assoc_opt o b with
      | Some vb -> (
        match join_value va vb with Top -> None | v -> Some (o, v))
      | None -> None)
    a

let join_state a b =
  { regs = Array.map2 join_value a.regs b.regs; slots = join_slots a.slots b.slots }

module Lattice = struct
  type t = state

  let equal = state_equal
  let join = join_state

  (* Chains are finite: sets only grow towards the [max_set] cap and
     then snap to Top, slot maps only shrink. *)
  let widen = join_state
end

module Solver = Dataflow.Make (Lattice)

type site = {
  cs_fn : int;
  cs_site : int;
  cs_targets : int list option;  (** sorted entries; [None] = Top *)
  cs_witness : int;  (** seeding instruction address; 0 when Top *)
}

type t = { sites : site list; by_site : (int, site) Hashtbl.t }

let of_sites sites =
  let by_site = Hashtbl.create (max 16 (List.length sites)) in
  List.iter (fun s -> Hashtbl.replace by_site s.cs_site s) sites;
  { sites; by_site }

let sites t = t.sites

let site_targets t site =
  match Hashtbl.find_opt t.by_site site with
  | Some { cs_targets = Some ts; cs_witness = w; _ } -> Some (ts, w)
  | _ -> None

let resolve t site =
  match Hashtbl.find_opt t.by_site site with
  | Some { cs_targets = Some ts; _ } -> Some ts
  | _ -> None

let export t = t.sites
let import sites = of_sites sites

(* ---- the analysis ---- *)

let caller_saved_idx =
  List.map Reg.index Reg.caller_saved

let read_word (m : Jt_obj.Objfile.t) addr =
  let b k = Jt_obj.Objfile.byte_at m (addr + k) in
  match (b 0, b 1, b 2, b 3) with
  | Some b0, Some b1, Some b2, Some b3 ->
    Some (b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24))
  | _ -> None

(* Bounded table enumeration: at most [max_set] distinct entries and at
   most 256 element reads, or the load degrades to Top. *)
let max_table_elems = 256

let analyze ~(m : Jt_obj.Objfile.t) ~(entries : int list)
    ~(code_ptrs : int list) ~(jump_table_targets : int list)
    (fns : (Cfg.fn * Vsa.t) list) =
  let tracked = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace tracked e ()) entries;
  let exported = Hashtbl.create 16 in
  List.iter
    (fun (s : Jt_obj.Symbol.t) -> Hashtbl.replace exported s.vaddr ())
    (Jt_obj.Objfile.exported_symbols m);
  (* A function is [closed] when every call to it is a direct call we
     can see: not exported, never address-taken (the raw scan covers
     immediates in code bytes and relocated pc-relative leas), not a
     jump-table target, not the program entry.  Only closed functions
     may have their entry argument registers refined from their call
     sites. *)
  let escapes = Hashtbl.create 64 in
  List.iter (fun a -> Hashtbl.replace escapes a ()) code_ptrs;
  List.iter (fun a -> Hashtbl.replace escapes a ()) jump_table_targets;
  (match m.Jt_obj.Objfile.entry with
  | Some e -> Hashtbl.replace escapes e ()
  | None -> ());
  let closed e =
    Hashtbl.mem tracked e
    && (not (Hashtbl.mem exported e))
    && not (Hashtbl.mem escapes e)
  in
  let arg_regs = [ Reg.index Reg.r0; Reg.index Reg.r1; Reg.index Reg.r2 ] in
  (* Per-closed-function join of caller argument values, grown
     monotonically by the outer fixpoint below. *)
  let entry_args : (int, value array) Hashtbl.t = Hashtbl.create 16 in
  let entry_state fn_entry =
    let regs = Array.make Reg.count Top in
    (match Hashtbl.find_opt entry_args fn_entry with
    | Some args ->
      List.iteri (fun k i -> regs.(i) <- args.(k)) arg_regs
    | None -> ());
    { regs; slots = [] }
  in
  let seed_const ~at k =
    if Hashtbl.mem tracked k then Entries (Iset.singleton k, at) else Top
  in
  let eval_operand st ~at = function
    | Insn.Imm v -> seed_const ~at v
    | Insn.Reg r -> st.regs.(Reg.index r)
  in
  let singleton = function
    | Vsa.Cst { lo; hi } when lo = hi -> Some lo
    | _ -> None
  in
  (* Evaluate a 4-byte load: a pinned entry-sp-relative address reads
     the tracked slot; a constant-base table with a VSA-bounded index
     enumerates the in-image words — every element must be a tracked
     entry or the whole load is Top. *)
  let eval_load vsa st (info : Jt_disasm.Disasm.insn_info) (mem : Insn.mem) =
    let at = info.d_addr in
    match Vsa.mem_addr vsa info mem with
    | Vsa.Sprel { lo; hi } when lo = hi ->
      Option.value ~default:Top (List.assoc_opt lo st.slots)
    | _ -> (
      let base =
        match mem.Insn.base with
        | None -> Some 0
        | Some Insn.Bpc -> Some (at + info.d_len)
        | Some (Insn.Breg r) -> singleton (Vsa.reg_before vsa at r)
      in
      let index =
        match mem.Insn.index with
        | None -> Some (0, 0)
        | Some r -> (
          match Vsa.reg_before vsa at r with
          | Vsa.Cst { lo; hi }
            when hi >= lo && hi - lo < max_table_elems && lo >= 0 ->
            Some (lo, hi)
          | _ -> None)
      in
      match (base, index) with
      | Some b, Some (il, ih) ->
        let disp = Word.to_signed mem.Insn.disp in
        let rec go i acc =
          if i > ih then acc
          else
            match acc with
            | Top -> Top
            | _ -> (
              let addr = (b + disp + (i * mem.Insn.scale)) land Word.mask in
              match read_word m addr with
              | Some w when Hashtbl.mem tracked w ->
                go (i + 1) (join_value acc (Entries (Iset.singleton w, at)))
              | _ -> Top)
        in
        go il Bot
      | _ -> Top)
  in
  let set_reg st r v =
    let regs = Array.copy st.regs in
    regs.(Reg.index r) <- v;
    { st with regs }
  in
  let set_slot st o v =
    let rest = List.remove_assoc o st.slots in
    let slots =
      match v with
      | Top -> rest
      | _ -> List.sort (fun (a, _) (b, _) -> compare a b) ((o, v) :: rest)
    in
    { st with slots }
  in
  let kill_slots st = { st with slots = [] } in
  let top_defs st (i : Insn.t) =
    List.fold_left (fun st r -> set_reg st r Top) st (Insn.defs i)
  in
  let transfer vsa (info : Jt_disasm.Disasm.insn_info) st =
    let at = info.d_addr in
    match info.d_insn with
    | Insn.Mov (rd, op) -> set_reg st rd (eval_operand st ~at op)
    | Insn.Lea (rd, mem) ->
      let v =
        match singleton (Vsa.mem_addr vsa info mem) with
        | Some a -> seed_const ~at a
        | None -> Top
      in
      set_reg st rd v
    | Insn.Load (Insn.W4, rd, mem) -> set_reg st rd (eval_load vsa st info mem)
    | Insn.Load (_, rd, _) -> set_reg st rd Top
    | Insn.Store (w, mem, op) -> (
      match Vsa.mem_addr vsa info mem with
      | Vsa.Sprel { lo; hi } when lo = hi ->
        if w = Insn.W4 then set_slot st lo (eval_operand st ~at op)
        else set_slot st lo Top
      | Vsa.Cst _ ->
        (* non-stack store: by VSA's region separation it cannot hit an
           entry-sp-relative slot *)
        st
      | _ -> kill_slots st)
    | Insn.Push op -> (
      match Vsa.reg_before vsa at Reg.sp with
      | Vsa.Sprel { lo; hi } when lo = hi ->
        set_slot st (lo - 4) (eval_operand st ~at op)
      | _ -> kill_slots st)
    | Insn.Pop rd ->
      let v =
        match Vsa.reg_before vsa at Reg.sp with
        | Vsa.Sprel { lo; hi } when lo = hi ->
          Option.value ~default:Top (List.assoc_opt lo st.slots)
        | _ -> Top
      in
      set_reg st rd v
    | Insn.Call _ | Insn.Call_ind _ ->
      (* The callee may clobber caller-saved registers and write the
         caller's frame through escaped pointers. *)
      let regs = Array.copy st.regs in
      List.iter (fun i -> regs.(i) <- Top) caller_saved_idx;
      { regs; slots = [] }
    | Insn.Syscall _ ->
      let regs = Array.copy st.regs in
      regs.(Reg.index Reg.r0) <- Top;
      { regs; slots = [] }
    | i -> top_defs st i
  in
  (* Outer fixpoint: solve every function, propagate direct-call
     argument values into closed callees, repeat until the argument
     joins stabilize.  Monotone and finite (value chains are bounded),
     with a defensive round cap that degrades to Top instead of
     stopping early. *)
  let solutions = ref [] in
  let stable = ref false in
  let rounds = ref 0 in
  while not !stable do
    incr rounds;
    stable := true;
    solutions :=
      List.map
        (fun ((fn : Cfg.fn), vsa) ->
          let solver =
            Solver.solve ~entry:(entry_state fn.Cfg.f_entry)
              ~transfer:(transfer vsa) fn
          in
          (fn, vsa, solver))
        fns;
    let join_arg callee args =
      if closed callee then begin
        let prev =
          match Hashtbl.find_opt entry_args callee with
          | Some a -> a
          | None -> Array.make (List.length arg_regs) Bot
        in
        let next = Array.mapi (fun k v -> join_value v args.(k)) prev in
        if not (Array.for_all2 equal_value prev next) then begin
          Hashtbl.replace entry_args callee next;
          stable := false
        end
      end
    in
    List.iter
      (fun ((fn : Cfg.fn), _vsa, solver) ->
        List.iter
          (fun (b : Cfg.block) ->
            Array.iter
              (fun (info : Jt_disasm.Disasm.insn_info) ->
                match info.d_insn with
                | Insn.Call t
                | Insn.Jmp t
                  when Hashtbl.mem tracked t
                       && not (Hashtbl.mem fn.Cfg.f_blocks t) -> (
                  match Solver.before solver info.d_addr with
                  | Some st ->
                    join_arg t
                      (Array.of_list
                         (List.map (fun i -> st.regs.(i)) arg_regs))
                  | None -> ())
                | Insn.Call t when Hashtbl.mem tracked t -> (
                  match Solver.before solver info.d_addr with
                  | Some st ->
                    join_arg t
                      (Array.of_list
                         (List.map (fun i -> st.regs.(i)) arg_regs))
                  | None -> ())
                | _ -> ())
              b.Cfg.b_insns)
          (Cfg.fn_blocks fn))
      !solutions;
    if !rounds >= 10 && not !stable then begin
      (* degrade every refined entry to Top rather than iterate on *)
      Hashtbl.reset entry_args;
      stable := true;
      solutions :=
        List.map
          (fun ((fn : Cfg.fn), vsa) ->
            let solver =
              Solver.solve ~entry:(entry_state fn.Cfg.f_entry)
                ~transfer:(transfer vsa) fn
            in
            (fn, vsa, solver))
          fns
    end
  done;
  (* Per-site results from the stabilized solution. *)
  let sites = ref [] in
  List.iter
    (fun ((fn : Cfg.fn), vsa, solver) ->
      List.iter
        (fun (b : Cfg.block) ->
          Array.iter
            (fun (info : Jt_disasm.Disasm.insn_info) ->
              match info.d_insn with
              | Insn.Call_ind (operand, mem) ->
                let v =
                  match Solver.before solver info.d_addr with
                  | None -> Top
                  | Some st -> (
                    match (operand, mem) with
                    | Some r, _ -> st.regs.(Reg.index r)
                    | None, Some m -> eval_load vsa st info m
                    | None, None -> Top)
                in
                let cs_targets, cs_witness =
                  match v with
                  | Entries (s, w) -> (Some (Iset.elements s), w)
                  | Bot | Top -> (None, 0)
                in
                sites :=
                  { cs_fn = fn.Cfg.f_entry; cs_site = info.d_addr;
                    cs_targets; cs_witness }
                  :: !sites
              | _ -> ())
            b.Cfg.b_insns)
        (Cfg.fn_blocks fn))
    !solutions;
  of_sites
    (List.sort (fun a b -> compare a.cs_site b.cs_site) !sites)
