open Jt_isa
open Jt_disasm.Disasm

(* Conservative value-set / interval analysis (a small-scale take on the
   VSA of Balakrishnan & Reps, via the Macaw-style dataflow framework in
   [Dataflow]).  Each register holds one of:

     Bot        unreachable / no value yet
     Cst  itv   a 32-bit word whose signed value lies in the interval —
                constants, global/absolute addresses with offsets
     Sprel itv  function-entry [sp] plus an offset in the interval —
                frame pointers and derived frame addresses
     Top        anything

   All arithmetic saturates to Top as soon as an interval could leave the
   signed 32-bit range, so wraparound never has to be modelled; anything
   unproven (loads, indirect calls, convention-breaking modules) goes
   straight to Top. *)

type itv = { lo : int; hi : int }

type value = Bot | Cst of itv | Sprel of itv | Top

let i32_min = -0x8000_0000
let i32_max = 0x7FFF_FFFF

let singleton v = { lo = v; hi = v }

(* Interval constructors saturate out-of-range bounds to Top: concrete
   machine arithmetic wraps mod 2^32, and an interval that stayed inside
   the signed range is only sound while no wrap can have occurred. *)
let cst lo hi = if lo < i32_min || hi > i32_max then Top else Cst { lo; hi }
let sprel lo hi = if lo < i32_min || hi > i32_max then Top else Sprel { lo; hi }

let itv_join a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let itv_widen prev next =
  {
    lo = (if next.lo < prev.lo then i32_min else prev.lo);
    hi = (if next.hi > prev.hi then i32_max else prev.hi);
  }

let itv_leq a b = b.lo <= a.lo && a.hi <= b.hi

let join_value a b =
  match (a, b) with
  | Bot, v | v, Bot -> v
  | Top, _ | _, Top -> Top
  | Cst x, Cst y -> Cst (itv_join x y)
  | Sprel x, Sprel y -> Sprel (itv_join x y)
  | Cst _, Sprel _ | Sprel _, Cst _ -> Top

let widen_value prev next =
  match (prev, next) with
  | Bot, v | v, Bot -> v
  | Top, _ | _, Top -> Top
  | Cst x, Cst y -> Cst (itv_widen x y)
  | Sprel x, Sprel y -> Sprel (itv_widen x y)
  | Cst _, Sprel _ | Sprel _, Cst _ -> Top

let leq_value a b =
  match (a, b) with
  | Bot, _ -> true
  | _, Top -> true
  | Top, _ -> false
  | _, Bot -> false
  | Cst x, Cst y -> itv_leq x y
  | Sprel x, Sprel y -> itv_leq x y
  | Cst _, Sprel _ | Sprel _, Cst _ -> false

let equal_value a b =
  match (a, b) with
  | Bot, Bot | Top, Top -> true
  | Cst x, Cst y | Sprel x, Sprel y -> x.lo = y.lo && x.hi = y.hi
  | _ -> false

(* Concrete membership, for the property tests: is word [w] described by
   the abstract value, given the concrete value [sp0] the stack pointer
   held at function entry? *)
let contains ~sp0 v w =
  match v with
  | Bot -> false
  | Top -> true
  | Cst i ->
    let s = Word.to_signed w in
    i.lo <= s && s <= i.hi
  | Sprel i ->
    let off = Word.to_signed (Word.sub w sp0) in
    i.lo <= off && off <= i.hi

let pp_value ppf v =
  match v with
  | Bot -> Format.fprintf ppf "bot"
  | Top -> Format.fprintf ppf "top"
  | Cst i ->
    if i.lo = i.hi then Format.fprintf ppf "%d" i.lo
    else Format.fprintf ppf "[%d,%d]" i.lo i.hi
  | Sprel i ->
    if i.lo = i.hi then Format.fprintf ppf "sp%+d" i.lo
    else Format.fprintf ppf "sp+[%d,%d]" i.lo i.hi

let value_to_string v = Format.asprintf "%a" pp_value v

(* ---- abstract arithmetic ---- *)

let add_value a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Top, _ | _, Top -> Top
  | Cst x, Cst y -> cst (x.lo + y.lo) (x.hi + y.hi)
  | Sprel x, Cst y | Cst y, Sprel x -> sprel (x.lo + y.lo) (x.hi + y.hi)
  | Sprel _, Sprel _ -> Top

let sub_value a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Top, _ | _, Top -> Top
  | Cst x, Cst y -> cst (x.lo - y.hi) (x.hi - y.lo)
  | Sprel x, Cst y -> sprel (x.lo - y.hi) (x.hi - y.lo)
  (* sp-relative minus sp-relative: the [sp0] terms cancel. *)
  | Sprel x, Sprel y -> cst (x.lo - y.hi) (x.hi - y.lo)
  | Cst _, Sprel _ -> Top

let mul_value a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Cst x, Cst y ->
    let ps = [ x.lo * y.lo; x.lo * y.hi; x.hi * y.lo; x.hi * y.hi ] in
    cst (List.fold_left min max_int ps) (List.fold_left max min_int ps)
  | _ -> Top

let scale_value v scale =
  if scale = 1 then v else mul_value v (Cst (singleton scale))

(* Word-exact evaluation when both operands are known single values;
   matches the VM's semantics instruction for instruction. *)
let concrete_binop op a b =
  let w =
    match op with
    | Insn.Add -> Word.add a b
    | Insn.Sub -> Word.sub a b
    | Insn.And -> Word.logand a b
    | Insn.Or -> Word.logor a b
    | Insn.Xor -> Word.logxor a b
    | Insn.Shl -> Word.shl a b
    | Insn.Shr -> Word.shr a b
    | Insn.Sar -> Word.sar a b
    | Insn.Mul -> Word.mul a b
  in
  Cst (singleton (Word.to_signed w))

let binop_value op a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | _ -> (
    match op with
    | Insn.Add -> add_value a b
    | Insn.Sub -> sub_value a b
    | Insn.Mul -> mul_value a b
    | Insn.And -> (
      match (a, b) with
      | Cst x, Cst y when x.lo = x.hi && y.lo = y.hi && x.lo >= 0 && y.lo >= 0
        ->
        concrete_binop op (Word.of_int x.lo) (Word.of_int y.lo)
      (* Masking with a known non-negative constant bounds the result in
         [0, mask] whatever the other operand is — the workhorse for
         histogram-style [and i, mask] index clamps. *)
      | _, Cst m when m.lo = m.hi && m.lo >= 0 -> cst 0 m.lo
      | Cst m, _ when m.lo = m.hi && m.lo >= 0 -> cst 0 m.lo
      | _ -> Top)
    | Insn.Or | Insn.Xor | Insn.Shl | Insn.Shr | Insn.Sar -> (
      match (a, b) with
      | Cst x, Cst y when x.lo = x.hi && y.lo = y.hi && x.lo >= 0 && y.lo >= 0
        ->
        concrete_binop op (Word.of_int x.lo) (Word.of_int y.lo)
      | _ -> Top))

let neg_value = function
  | Bot -> Bot
  | Cst x when x.lo = x.hi ->
    Cst (singleton (Word.to_signed (Word.neg (Word.of_int x.lo))))
  | Cst x when x.lo > i32_min -> cst (-x.hi) (-x.lo)
  | _ -> Top

let not_value = function
  | Bot -> Bot
  | Cst x when x.lo = x.hi ->
    Cst (singleton (Word.to_signed (Word.lognot (Word.of_int x.lo))))
  | _ -> Top

(* ---- register-file lattice and transfer ---- *)

let nregs = Reg.count

let entry_state () =
  let a = Array.make nregs Top in
  a.(Reg.index Reg.sp) <- Sprel (singleton 0);
  a

let get st r = st.(Reg.index r)

let set st r v =
  let st = Array.copy st in
  st.(Reg.index r) <- v;
  st

let eval_operand st = function
  | Insn.Imm v -> Cst (singleton (Word.to_signed v))
  | Insn.Reg r -> get st r

(* Abstract [base + index*scale + disp]; [next_pc] resolves pc-relative
   bases (the address of the following instruction is a link-time
   constant). *)
let eval_mem st ~next_pc (m : Insn.mem) =
  let base =
    match m.Insn.base with
    | Some (Insn.Breg r) -> get st r
    | Some Insn.Bpc -> Cst (singleton next_pc)
    | None -> Cst (singleton 0)
  in
  let idx =
    match m.Insn.index with
    | Some r -> scale_value (get st r) m.Insn.scale
    | None -> Cst (singleton 0)
  in
  let disp = Cst (singleton (Word.to_signed m.Insn.disp)) in
  add_value (add_value base idx) disp

let clobber st regs =
  let st = Array.copy st in
  List.iter (fun r -> st.(Reg.index r) <- Top) regs;
  st

(* Transfer of one instruction over the register file.  [trust] reflects
   [sa_reliable_conventions]: with it, direct calls preserve sp/fp and
   the callee-saved registers; without it the caller never gets here
   (the whole analysis bails).  Indirect calls clobber everything —
   bailing to Top on anything unproven. *)
let transfer_regs ~trust ~at ~len (i : Insn.t) st =
  let next_pc = at + len in
  match i with
  | Insn.Mov (rd, src) -> set st rd (eval_operand st src)
  | Insn.Lea (rd, m) -> set st rd (eval_mem st ~next_pc m)
  | Insn.Load (_, rd, _) -> set st rd Top
  | Insn.Load_canary rd -> set st rd Top
  | Insn.Binop (op, rd, src) ->
    set st rd (binop_value op (get st rd) (eval_operand st src))
  | Insn.Neg rd -> set st rd (neg_value (get st rd))
  | Insn.Not rd -> set st rd (not_value (get st rd))
  | Insn.Push _ ->
    set st Reg.sp (add_value (get st Reg.sp) (Cst (singleton (-4))))
  | Insn.Pop rd ->
    let st = set st rd Top in
    set st Reg.sp (add_value (get st Reg.sp) (Cst (singleton 4)))
  | Insn.Call _ ->
    if trust then clobber st Reg.caller_saved
    else clobber st Reg.all
  | Insn.Call_ind _ -> clobber st Reg.all
  (* This VM's syscalls write only the result register; clobbering all
     caller-saved registers over-approximates every one of them. *)
  | Insn.Syscall _ -> clobber st Reg.caller_saved
  | Insn.Nop | Insn.Halt | Insn.Store _ | Insn.Cmp _ | Insn.Test _
  | Insn.Jmp _ | Insn.Jcc _ | Insn.Jmp_ind _ | Insn.Ret ->
    st

module RegLattice = struct
  type t = value array

  let equal a b =
    let ok = ref true in
    for i = 0 to nregs - 1 do
      if not (equal_value a.(i) b.(i)) then ok := false
    done;
    !ok

  let join a b = Array.init nregs (fun i -> join_value a.(i) b.(i))
  let widen a b = Array.init nregs (fun i -> widen_value a.(i) b.(i))
end

module Solver = Dataflow.Make (RegLattice)

type t = { vs_solver : Solver.t option  (** [None]: analysis bailed *) }

let analyze ?(trust_conventions = true) (fn : Jt_cfg.Cfg.fn) =
  if not trust_conventions then { vs_solver = None }
  else
    let transfer (i : insn_info) st =
      transfer_regs ~trust:true ~at:i.d_addr ~len:i.d_len i.d_insn st
    in
    let solver = Solver.solve ~entry:(entry_state ()) ~transfer fn in
    { vs_solver = Some solver }

let bailed t = t.vs_solver = None

let reg_before t addr r =
  match t.vs_solver with
  | None -> Top
  | Some s -> (
    match Solver.before s addr with
    | Some st -> get st r
    | None -> Top)

let mem_addr t (info : insn_info) (m : Insn.mem) =
  match t.vs_solver with
  | None -> Top
  | Some s -> (
    match Solver.before s info.d_addr with
    | Some st -> eval_mem st ~next_pc:(info.d_addr + info.d_len) m
    | None -> Top)

let block_in t a =
  match t.vs_solver with
  | None -> None
  | Some s ->
    Option.map
      (fun st -> List.map (fun r -> (r, get st r)) Reg.all)
      (Solver.block_in s a)

let iterations t =
  match t.vs_solver with None -> 0 | Some s -> Solver.iterations s

(* Serialization: the per-block in-states are the whole fixpoint (see
   [Dataflow.export]).  [import] rebuilds the exact transfer closure
   [analyze] uses, so replayed out-states and per-instruction states are
   identical to the originals. *)

let fn_transfer (i : insn_info) st =
  transfer_regs ~trust:true ~at:i.d_addr ~len:i.d_len i.d_insn st

let export t =
  match t.vs_solver with None -> None | Some s -> Some (Solver.export s)

let import ~ins (fn : Jt_cfg.Cfg.fn) =
  match ins with
  | None -> { vs_solver = None }
  | Some ins ->
    { vs_solver = Some (Solver.restore ~transfer:fn_transfer ~ins fn) }
