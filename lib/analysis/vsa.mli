(** Conservative value-set / interval analysis (section 3.3 style helper,
    in the spirit of VSA) built on the {!Dataflow} solver.

    Tracks each register at each program point as one of: unreachable
    ([Bot]), a signed-32-bit interval of word values ([Cst] — constants
    and global/absolute addresses with offsets), the function-entry stack
    pointer plus an offset interval ([Sprel]), or unknown ([Top]).

    The analysis is deliberately conservative: loads, indirect calls and
    anything else unproven go to [Top]; interval arithmetic saturates to
    [Top] rather than modelling 32-bit wraparound; and for modules that
    break the calling convention ([sa_reliable_conventions = false] —
    pass [trust_conventions:false]) the whole analysis bails and every
    query answers [Top]. *)

open Jt_isa

type itv = { lo : int; hi : int }

type value = Bot | Cst of itv | Sprel of itv | Top

type t

val analyze : ?trust_conventions:bool -> Jt_cfg.Cfg.fn -> t
(** Fixpoint over the function.  [trust_conventions] defaults to [true];
    with [false] the analysis bails (every query returns [Top]). *)

val bailed : t -> bool

val reg_before : t -> int -> Reg.t -> value
(** Abstract value of a register just before an instruction ([Top] for
    unknown addresses or a bailed analysis). *)

val mem_addr : t -> Jt_disasm.Disasm.insn_info -> Insn.mem -> value
(** Abstract address of a memory operand evaluated at an instruction
    (pc-relative bases resolve against the instruction's end address). *)

val block_in : t -> int -> (Reg.t * value) list option
(** Per-register state at a block boundary, for fact dumps. *)

val iterations : t -> int

val export : t -> (int * value array) list option
(** Per-block in-state register files, sorted by block address; [None]
    when the analysis bailed.  Together with the function itself this is
    the complete fixpoint (see {!Dataflow.Make.export}). *)

val import : ins:(int * value array) list option -> Jt_cfg.Cfg.fn -> t
(** Rebuild an analysis from {!export}ed states without re-running the
    fixpoint; [ins = None] reconstructs a bailed analysis.  All queries
    answer identically to the original.  @raise Failure if a listed
    block is not in the function. *)

(** {1 Lattice primitives}

    Exposed for the property-based tests: monotonicity of [join]/[widen]
    and soundness of {!transfer_regs} against concrete replays. *)

val join_value : value -> value -> value
val widen_value : value -> value -> value
val leq_value : value -> value -> bool
val equal_value : value -> value -> bool

val contains : sp0:Word.t -> value -> Word.t -> bool
(** [contains ~sp0 v w]: does the abstract value describe the concrete
    word [w], where [sp0] is the concrete stack pointer at function
    entry (the reference point of [Sprel])? *)

val entry_state : unit -> value array
(** The function-entry register file: [sp = Sprel [0,0]], all else
    [Top]. *)

val transfer_regs :
  trust:bool -> at:int -> len:int -> Insn.t -> value array -> value array
(** Pure per-instruction transfer over a 16-entry register file (does not
    mutate its input). *)

val pp_value : Format.formatter -> value -> unit
val value_to_string : value -> string
