open Jt_isa
open Jt_cfg
open Jt_disasm.Disasm

type summary = { ip_clobbers : int; ip_reads : int; ip_barrier : bool }

let all_regs_mask = Liveness.reg_mask Reg.all

let everything =
  { ip_clobbers = all_regs_mask; ip_reads = all_regs_mask; ip_barrier = true }

(* The kernel interface: a syscall returns its result in r0 and may read
   the syscall number/arguments in r0-r2; no other register is touched
   (the simulated kernel saves and restores the rest, like a real one).
   It is still a shadow-state barrier — allocator events are
   syscall-gated. *)
let syscall_summary =
  {
    ip_clobbers = Liveness.reg_mask [ Reg.r0 ];
    ip_reads = Liveness.reg_mask [ Reg.r0; Reg.r1; Reg.r2 ];
    ip_barrier = true;
  }

let join a b =
  {
    ip_clobbers = a.ip_clobbers lor b.ip_clobbers;
    ip_reads = a.ip_reads lor b.ip_reads;
    ip_barrier = a.ip_barrier || b.ip_barrier;
  }

let summaries ?(resolve = fun _ -> None) (cfg : Cfg.t) =
  let fns = Cfg.functions cfg in
  let summary = Hashtbl.create 32 in
  List.iter
    (fun fn ->
      Hashtbl.replace summary fn.Cfg.f_entry
        { ip_clobbers = 0; ip_reads = 0; ip_barrier = false })
    fns;
  let lookup t =
    match Hashtbl.find_opt summary t with Some s -> s | None -> everything
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun fn ->
        let acc = ref (Hashtbl.find summary fn.Cfg.f_entry) in
        Hashtbl.iter
          (fun _ (b : Cfg.block) ->
            Array.iter
              (fun info ->
                match info.d_insn with
                | Insn.Call t -> acc := join !acc (lookup t)
                | Insn.Call_ind _ -> (
                  match resolve info.d_addr with
                  | Some targets ->
                    List.iter (fun t -> acc := join !acc (lookup t)) targets
                  | None -> acc := everything)
                | Insn.Syscall _ -> acc := join !acc syscall_summary
                | Insn.Jmp_ind _ ->
                  (* indirect tail transfer (PLT stubs jump through the
                     GOT): the destination is outside the direct call
                     graph, so it may be anything — including another
                     module's allocator *)
                  acc := everything
                | Insn.Load_canary _ as i ->
                  (* reads/writes like any move, but touching the canary
                     secret pins the shadow-state barrier *)
                  acc :=
                    join !acc
                      {
                        ip_clobbers = Liveness.reg_mask (Insn.defs i);
                        ip_reads = Liveness.reg_mask (Insn.uses i);
                        ip_barrier = true;
                      }
                | Insn.Jmp t when not (Hashtbl.mem fn.Cfg.f_blocks t) ->
                  (* tail call *)
                  acc := join !acc (lookup t)
                | i ->
                  acc :=
                    join !acc
                      {
                        ip_clobbers = Liveness.reg_mask (Insn.defs i);
                        ip_reads = Liveness.reg_mask (Insn.uses i);
                        ip_barrier = false;
                      })
              b.b_insns)
          fn.Cfg.f_blocks;
        if !acc <> Hashtbl.find summary fn.Cfg.f_entry then begin
          Hashtbl.replace summary fn.Cfg.f_entry !acc;
          changed := true
        end)
      fns
  done;
  summary
