(** Inter-procedural register summaries (section 4.1.2).

    Calling-convention-based liveness is unsound when compilers (ipa-ra)
    or hand-written assembly break the convention — the callee may use
    caller-saved registers it "shouldn't", or fail to restore
    callee-saved ones.  For such modules the paper extends the analysis
    inter-procedurally; here that takes the form of per-function
    summaries: the registers a call may {e modify} and the registers it
    may {e read}, computed as a fixpoint over the call graph.

    Syscalls are summarized precisely — the kernel clobbers only [r0]
    (the result register) and reads at most [r0]-[r2] — instead of
    all-regs.  Indirect calls use the join of their resolved targets'
    summaries when the caller supplies a [resolve] function (in
    practice backed by {!Cpa}); unresolved indirect calls and calls
    leaving the module still touch everything.

    Each summary also carries a {e shadow-state barrier} bit: whether
    the callee may transitively reach a syscall (allocator events are
    syscall-gated) or touch the canary secret — the two ways the
    sanitizer shadow state can change across a call.  JASan's
    cross-call claim elision is legal only through barrier-free
    callees. *)

type summary = {
  ip_clobbers : int;  (** registers possibly written, as a bit mask *)
  ip_reads : int;  (** registers possibly read *)
  ip_barrier : bool;
      (** may transitively execute a syscall or read the canary secret,
          or reaches unknown code — shadow state may change *)
}

val summaries :
  ?resolve:(int -> int list option) -> Jt_cfg.Cfg.t -> (int, summary) Hashtbl.t
(** Function entry -> summary.  [resolve site] supplies the resolved
    target entries of the indirect call at instruction address [site],
    or [None] for Top (the default for every site when omitted). *)

val everything : summary
val syscall_summary : summary
val join : summary -> summary -> summary
val all_regs_mask : int
