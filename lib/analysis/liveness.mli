(** Intra-procedural register and arithmetic-flag liveness.

    This is the analysis behind the paper's main rewrite-rule optimization
    (sections 3.3.2 and 4.1): instrumentation inserted before an
    instruction only needs to save and restore the registers and flags
    that are live there.

    Conservatism follows the paper: at indirect branches with unknown
    targets everything is assumed live; calls are assumed to clobber
    caller-saved registers and flags and to read the argument registers;
    returns and tail calls keep the return value, stack registers and
    callee-saved registers live.  For modules that break the calling
    convention (the ipa-ra / hand-written-assembly cases of section
    4.1.2), use {!conservative} results instead. *)

open Jt_isa

type t
(** Liveness facts for one function. *)

val analyze :
  ?call_summary:(int -> (int * int) option) ->
  ?exit_all_live:bool ->
  Jt_cfg.Cfg.fn ->
  t
(** [call_summary entry] may supply an inter-procedural
    [(clobbered-mask, read-mask)] for a direct callee (see
    {!Interproc}); used instead of the calling convention when the
    module is known to break it.  [exit_all_live] additionally treats
    every register and flag as live at returns and tail calls, for
    callees whose callers may rely on non-standard state. *)

val live_before : t -> int -> int * Flags.set
(** [live_before t addr] = (register bit mask, flag set) live immediately
    before the instruction at [addr].  Unknown addresses report everything
    live. *)

val dead_regs_before : t -> int -> Reg.t list
(** Registers (excluding [sp] and [fp], which instrumentation never
    borrows) provably dead before the instruction. *)

val flags_dead_before : t -> int -> bool
(** Are all four arithmetic flags dead before the instruction? *)

val conservative : Jt_cfg.Cfg.fn -> t
(** Everything live everywhere: the fallback for convention-breaking
    modules and the "JASan-hybrid (base)" configuration of Figure 8. *)

val reg_mask : Reg.t list -> int
val mask_regs : int -> Reg.t list

val export : t -> bool * (int * int * int) list
(** [(all_live, facts)] where each fact is (instruction address, live
    register mask, live flag bits), sorted by address — the complete
    analysis result, ready for the serializable IR. *)

val import : all_live:bool -> facts:(int * int * int) list -> unit -> t
(** Inverse of {!export}: every query answers identically to the
    original analysis. *)
