(** Stack-frame size analysis.

    Reports the static frame reservation of a function (the immediate of
    the [sub sp, N] in its prologue) and whether the function follows the
    standard frame discipline.  Used by stack-protection policies and by
    the DESIGN.md-documented ablation benches. *)

type info = {
  s_entry : int;
  s_frame_size : int option;  (** [None] when no standard prologue found *)
  s_has_canary_pattern : bool;
      (** a [ldcanary] appears in the entry block *)
  s_push_bytes : int;  (** bytes pushed by prologue pushes in entry block *)
}

val analyze : Jt_cfg.Cfg.fn -> info

val frame_span : info -> (int * int) option
(** The prologue's stack reservation as entry-sp-relative byte offsets
    [(lo, hi)] — [hi] is always [-1] (the byte just below the entry
    [sp]), [lo] covers the pushes plus the [sub sp, N] locals.  [None]
    when no standard prologue was recognized, in which case no stack
    access may be considered proven in-frame. *)
