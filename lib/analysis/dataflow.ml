open Jt_cfg
open Jt_disasm.Disasm

(* Generic forward worklist solver over one function's CFG.

   The client supplies a join-semilattice: [join] must be an upper bound
   and [transfer] monotone, or the fixpoint claim is void.  [widen] is
   consulted instead of [join] for a block's in-state once the block has
   been reprocessed more than [widen_after] times, so infinite-height
   lattices (intervals) still terminate; finite lattices can leave it as
   [join]. *)

module type LATTICE = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
  val widen : t -> t -> t
end

module Make (L : LATTICE) = struct
  type t = {
    blocks : (int, Cfg.block) Hashtbl.t;
    block_of_insn : (int, int) Hashtbl.t;
    r_in : (int, L.t) Hashtbl.t;
    r_out : (int, L.t) Hashtbl.t;
    transfer : insn_info -> L.t -> L.t;
    iterations : int;
  }

  let solve ?(widen_after = 2) ~entry ~transfer (fn : Cfg.fn) =
    let blocks = fn.Cfg.f_blocks in
    let addrs = List.map (fun b -> b.Cfg.b_addr) (Cfg.fn_blocks fn) in
    let r_in = Hashtbl.create 16 in
    let r_out = Hashtbl.create 16 in
    let visits = Hashtbl.create 16 in
    let out_of a st =
      match Hashtbl.find_opt blocks a with
      | None -> st
      | Some b -> Array.fold_left (fun st i -> transfer i st) st b.Cfg.b_insns
    in
    (* Worklist seeded with the entry; a block's in-state is the join of
       its processed predecessors' out-states (plus [entry] for the
       function entry).  Unprocessed predecessors contribute nothing —
       the optimistic initial value — and re-queue their successors once
       they are reached. *)
    let queue = Queue.create () in
    let queued = Hashtbl.create 16 in
    let enqueue a =
      if (not (Hashtbl.mem queued a)) && Hashtbl.mem blocks a then begin
        Hashtbl.replace queued a ();
        Queue.add a queue
      end
    in
    enqueue fn.Cfg.f_entry;
    let iterations = ref 0 in
    while not (Queue.is_empty queue) do
      let a = Queue.pop queue in
      Hashtbl.remove queued a;
      incr iterations;
      let b = Hashtbl.find blocks a in
      let pred_outs =
        List.filter_map
          (fun p -> if Hashtbl.mem blocks p then Hashtbl.find_opt r_out p else None)
          b.Cfg.b_preds
      in
      let contrib =
        match pred_outs with
        | [] -> None
        | o :: os -> Some (List.fold_left L.join o os)
      in
      let proposed =
        if a = fn.Cfg.f_entry then
          match contrib with None -> entry | Some c -> L.join entry c
        else match contrib with None -> entry | Some c -> c
      in
      let visit_n =
        let n = 1 + Option.value ~default:0 (Hashtbl.find_opt visits a) in
        Hashtbl.replace visits a n;
        n
      in
      let new_in =
        match Hashtbl.find_opt r_in a with
        | None -> proposed
        | Some prev ->
          if visit_n > widen_after then L.widen prev proposed
          else L.join prev proposed
      in
      let in_changed =
        match Hashtbl.find_opt r_in a with
        | Some prev -> not (L.equal prev new_in)
        | None -> true
      in
      if in_changed || not (Hashtbl.mem r_out a) then begin
        Hashtbl.replace r_in a new_in;
        let out = out_of a new_in in
        let out_changed =
          match Hashtbl.find_opt r_out a with
          | Some prev -> not (L.equal prev out)
          | None -> true
        in
        Hashtbl.replace r_out a out;
        if out_changed then List.iter enqueue b.Cfg.b_succs
      end
    done;
    let block_of_insn = Hashtbl.create 64 in
    List.iter
      (fun a ->
        match Hashtbl.find_opt blocks a with
        | None -> ()
        | Some b ->
          Array.iter
            (fun (i : insn_info) -> Hashtbl.replace block_of_insn i.d_addr a)
            b.Cfg.b_insns)
      addrs;
    { blocks; block_of_insn; r_in; r_out; transfer; iterations = !iterations }

  (* Spine-shaped input: a straight-line sequence with no internal
     control flow (e.g. a DBT trace's constituent-block spine).  No
     worklist is needed — a single forward pass is the fixpoint.  The
     element type is the caller's ('e may be an instruction, a block, or
     any richer record); [transfer] folds one element.  Returns the
     pre-state of every element plus the spine's out-state, so callers
     can both make per-element decisions and re-seed the entry for
     steady-state (back-edge) variants of the same spine. *)
  let solve_spine ~entry ~transfer (spine : 'e array) : L.t array * L.t =
    let n = Array.length spine in
    let pre = Array.make n entry in
    let st = ref entry in
    for i = 0 to n - 1 do
      pre.(i) <- !st;
      st := transfer spine.(i) !st
    done;
    (pre, !st)

  let block_in t a = Hashtbl.find_opt t.r_in a
  let block_out t a = Hashtbl.find_opt t.r_out a
  let iterations t = t.iterations

  (* The per-block in-states are the whole fixpoint: out-states and
     per-instruction states are derived by replaying [transfer].  So a
     solution serializes as just (block, in-state) pairs, and [restore]
     rebuilds an equivalent solver value with a single non-iterating
     pass — no worklist, no joins, provided the caller supplies the same
     transfer function the original [solve] used. *)
  let export t =
    Hashtbl.fold (fun a st acc -> (a, st) :: acc) t.r_in []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let restore ~transfer ~ins (fn : Cfg.fn) =
    let blocks = fn.Cfg.f_blocks in
    let r_in = Hashtbl.create 16 in
    let r_out = Hashtbl.create 16 in
    List.iter
      (fun (a, st) ->
        match Hashtbl.find_opt blocks a with
        | None -> failwith "Dataflow.restore: unknown block"
        | Some b ->
          Hashtbl.replace r_in a st;
          let out =
            Array.fold_left (fun st i -> transfer i st) st b.Cfg.b_insns
          in
          Hashtbl.replace r_out a out)
      ins;
    let block_of_insn = Hashtbl.create 64 in
    Hashtbl.iter
      (fun a (b : Cfg.block) ->
        Array.iter
          (fun (i : insn_info) -> Hashtbl.replace block_of_insn i.d_addr a)
          b.Cfg.b_insns)
      blocks;
    { blocks; block_of_insn; r_in; r_out; transfer; iterations = 0 }

  (* Per-instruction state: replay the block's transfer from its in-state
     up to (but not including) the instruction. *)
  let before t addr =
    match Hashtbl.find_opt t.block_of_insn addr with
    | None -> None
    | Some ba -> (
      match (Hashtbl.find_opt t.blocks ba, Hashtbl.find_opt t.r_in ba) with
      | Some b, Some st0 ->
        let st = ref st0 in
        let found = ref None in
        Array.iter
          (fun (i : insn_info) ->
            if i.d_addr = addr && !found = None then found := Some !st;
            if !found = None then st := t.transfer i !st)
          b.Cfg.b_insns;
        !found
      | _ -> None)
end
