(** Address-key availability machinery shared by the JASan per-function
    availability must-analysis ([Jt_jasan.Jasan.plan_elision]) and the
    DBT's trace-spine elision pass.  Both sides must agree exactly on
    what "same address" means and on which instructions act as shadow
    barriers, so the definitions live here once. *)

(** Syntactic address key [(base, index, scale, disp, width)] with
    register operands as [Reg.index] values ([-1] for absent).  Two
    accesses with equal keys whose registers carry the same values
    compute the same address range. *)
module Key : sig
  type t = int * int * int * int * int

  val compare : t -> t -> int
end

module Set : Stdlib.Set.S with type elt = Key.t

val key_of : Jt_isa.Insn.mem -> int -> Key.t option
(** The key of a memory operand at a given access width; [None] for
    pc-relative bases (those are handled by the pcrel claim, not by
    availability). *)

val key_regs : Key.t -> Jt_isa.Reg.t list
(** The guest registers an address key reads (base and/or index). *)

(** The must-lattice of available keys: intersection join, optimistic
    top implicit in the solver. *)
module Lattice : sig
  type t = Set.t

  val equal : t -> t -> bool
  val join : t -> t -> t
  val widen : t -> t -> t
end

val insn_transfer : Jt_isa.Insn.t -> Set.t -> Set.t
(** The instruction-shape part of the transfer function: calls and
    syscalls clear the set (shadow-state barriers); a definition of a
    key's address registers kills that key.  Clients add their own gen
    sites and extra barriers (canary stores) around this. *)
