(** Generic forward dataflow over one function's CFG.

    A reusable worklist solver in the style of Macaw's machine-code
    analyses: the client provides a join-semilattice and a per-instruction
    transfer function; the solver computes the least fixpoint of the usual
    in/out equations over {!Jt_cfg.Cfg.fn} blocks, with a widening hook so
    infinite-height domains (intervals) terminate.

    Soundness contract: [join] must be an upper bound of its arguments,
    [transfer] monotone, and [widen prev next] an upper bound of both that
    guarantees stabilization of every ascending chain.  Must-analyses
    (e.g. available checks) are expressed by flipping the order — use
    intersection as [join] and a designated "everything" element as the
    implicit optimistic initial value: unreached predecessors simply
    contribute nothing. *)

module type LATTICE = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t

  val widen : t -> t -> t
  (** [widen previous proposed]: applied in place of [join] for a block
      visited more than [widen_after] times.  Finite lattices can use
      [join]. *)
end

module Make (L : LATTICE) : sig
  type t

  val solve :
    ?widen_after:int ->
    entry:L.t ->
    transfer:(Jt_disasm.Disasm.insn_info -> L.t -> L.t) ->
    Jt_cfg.Cfg.fn ->
    t
  (** Run to fixpoint.  [entry] is the state at the function entry;
      [widen_after] (default 2) is the per-block visit count beyond which
      [L.widen] replaces [L.join]. *)

  val solve_spine :
    entry:L.t -> transfer:('e -> L.t -> L.t) -> 'e array -> L.t array * L.t
  (** Forward pass over a spine: a straight-line sequence with no
      internal control flow (a DBT trace's constituent-block spine).
      Returns each element's pre-state and the spine's out-state.  For a
      spine, one pass {e is} the fixpoint; re-seeding [entry] with the
      returned out-state yields the steady-state solution for a spine
      re-entered through its own back-edge. *)

  val block_in : t -> int -> L.t option
  (** Fixpoint state at a block's entry ([None] for blocks the solver
      never reached — unknown addresses). *)

  val block_out : t -> int -> L.t option

  val before : t -> int -> L.t option
  (** State just before an instruction, obtained by replaying the
      enclosing block's transfer from its in-state. *)

  val iterations : t -> int
  (** Blocks processed until stabilization (solver diagnostics). *)

  val export : t -> (int * L.t) list
  (** The fixpoint's per-block in-states, sorted by block address.  This
      is the complete solution: out-states and per-instruction states are
      replay-derived. *)

  val restore :
    transfer:(Jt_disasm.Disasm.insn_info -> L.t -> L.t) ->
    ins:(int * L.t) list ->
    Jt_cfg.Cfg.fn ->
    t
  (** Rebuild a solver value from {!export}ed in-states without running
      the fixpoint: one transfer pass per block recomputes the out-states.
      The caller must supply the same transfer the original [solve] used,
      or the replayed states are meaningless.  [iterations] of the result
      is [0].  @raise Failure if [ins] names a block not in the
      function. *)
end
