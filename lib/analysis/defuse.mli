(** SSA-style def-use chain tracing (section 3.3.3).

    Builds intra-procedural reaching definitions and exposes chain
    queries: "does the value in register [r] at instruction [a] derive
    from an instruction satisfying [p]?"  This is the building block the
    paper uses for tracing allocation-site provenance and for
    taint-tracking-style analyses (the repository's custom-tool example
    uses it for exactly that). *)

open Jt_isa

type t

val analyze : Jt_cfg.Cfg.fn -> t

val reaching_defs : t -> int -> Reg.t -> int list
(** Addresses of definitions of [r] that may reach the program point just
    before instruction [addr]; the pseudo-address [-1] stands for "value
    from function entry / unknown". *)

val same_defs : t -> Reg.t -> at_a:int -> at_b:int -> bool
(** Do the two program points see the same reaching-definition set for
    [r]?  Used by the dominating-check elision to corroborate that a
    register was not redefined between a witness check and the access it
    subsumes.  Necessary but not sufficient on its own (a definition
    between the points can reach both through a back edge), so callers
    must pair it with a path-sensitive argument such as the
    available-checks dataflow. *)

val traces_to : t -> int -> Reg.t -> pred:(Insn.t -> bool) -> bool
(** Transitively follow register-to-register dataflow backwards from the
    value of [r] before [addr]; true if any contributing definition
    satisfies [pred].  Memory is not traced through (stores/loads break
    the chain), matching a conservative binary-level tracer. *)

val export : t -> (int * (int * int list) list) list
(** Per-block reaching-definition in-environments:
    [(block address, (register index, def addresses) list)], blocks in
    address order, registers in index order — the complete fixpoint;
    per-instruction facts are replay-derived. *)

val import : ins:(int * (int * int list) list) list -> Jt_cfg.Cfg.fn -> t
(** Rebuild from {!export}ed in-environments by replaying each block's
    transfer — every query answers identically to the original.
    @raise Failure if a listed block is not in the function. *)
