open Jt_isa

(* Syntactic address key: two accesses with equal keys whose registers
   carry the same values compute the same address range.  Shared by the
   JASan per-function availability pass and the DBT's trace-spine
   elision, which must agree exactly on what "same address" means. *)
module Key = struct
  type t = int * int * int * int * int
  (* base reg (-1 none), index reg (-1 none), scale, disp, width *)

  let compare = compare
end

module Set = Stdlib.Set.Make (Key)

let key_of (m : Insn.mem) width =
  match m.Insn.base with
  | Some Insn.Bpc -> None
  | base ->
    let b = match base with Some (Insn.Breg r) -> Reg.index r | _ -> -1 in
    let x = match m.Insn.index with Some r -> Reg.index r | None -> -1 in
    Some (b, x, m.Insn.scale, Word.to_signed m.Insn.disp, width)

let key_regs ((b, x, _, _, _) : Key.t) =
  (if b >= 0 then [ Reg.of_index b ] else [])
  @ if x >= 0 then [ Reg.of_index x ] else []

(* Available-checks must-lattice: the set of address keys whose byte
   ranges were shadow-checked (or statically proven safe) on *every*
   path to a point.  Join is intersection; the solver's optimistic
   initialization plays the implicit "everything" top, so the analysis
   converges downwards to the must-set. *)
module Lattice = struct
  type t = Set.t

  let equal = Set.equal
  let join = Set.inter
  let widen = Set.inter
end

(* The instruction-shape part of the availability transfer function:
   calls and syscalls are shadow-state barriers (the allocator may
   poison redzones or freed blocks behind them), and any definition of
   a key's address registers invalidates the key.  Clients layer their
   own gen sites and extra barriers (canary stores) around this. *)
let insn_transfer (i : Insn.t) st =
  match i with
  | Insn.Call _ | Insn.Call_ind _ | Insn.Syscall _ -> Set.empty
  | i ->
    let defs = Insn.defs i in
    if defs = [] then st
    else
      Set.filter
        (fun k ->
          not
            (List.exists (fun r -> List.exists (Reg.equal r) defs) (key_regs k)))
        st
