open Jt_isa
open Jt_cfg
open Jt_disasm.Disasm

module Imap = Map.Make (Int)

(* Reaching definitions: def = instruction address; -1 = entry/unknown. *)
type t = {
  fn : Cfg.fn;
  (* per-instruction: register index -> set of reaching def addresses *)
  before : (int, int list Imap.t) Hashtbl.t;
  insn_of : (int, Insn.t) Hashtbl.t;
}

let entry_def = -1

let union_defs a b =
  Imap.union (fun _ x y -> Some (List.sort_uniq compare (x @ y))) a b

let transfer addr insn env =
  (* Calls define the return-value register by convention: allocation-site
     tracing hangs off this. *)
  let defs =
    match insn with
    | Insn.Call _ | Insn.Call_ind _ -> Reg.r0 :: Insn.defs insn
    | _ -> Insn.defs insn
  in
  List.fold_left (fun env r -> Imap.add (Reg.index r) [ addr ] env) env defs

let analyze (fn : Cfg.fn) =
  let blocks = Cfg.fn_blocks fn in
  let entry_env =
    List.fold_left (fun m r -> Imap.add (Reg.index r) [ entry_def ] m) Imap.empty Reg.all
  in
  let in_env = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace in_env b.Cfg.b_addr Imap.empty) blocks;
  Hashtbl.replace in_env fn.Cfg.f_entry entry_env;
  let out_of b =
    let env = ref (Hashtbl.find in_env b.Cfg.b_addr) in
    Array.iter (fun i -> env := transfer i.d_addr i.d_insn !env) b.Cfg.b_insns;
    !env
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        let out = out_of b in
        List.iter
          (fun s ->
            match Hashtbl.find_opt in_env s with
            | None -> ()
            | Some prev ->
              let merged = union_defs prev out in
              if not (Imap.equal (fun a b -> a = b) merged prev) then begin
                Hashtbl.replace in_env s merged;
                changed := true
              end)
          b.Cfg.b_succs)
      blocks
  done;
  let before = Hashtbl.create 64 in
  let insn_of = Hashtbl.create 64 in
  List.iter
    (fun b ->
      let env = ref (Hashtbl.find in_env b.Cfg.b_addr) in
      Array.iter
        (fun i ->
          Hashtbl.replace before i.d_addr !env;
          Hashtbl.replace insn_of i.d_addr i.d_insn;
          env := transfer i.d_addr i.d_insn !env)
        b.Cfg.b_insns)
    blocks;
  { fn; before; insn_of }

let reaching_defs t addr r =
  match Hashtbl.find_opt t.before addr with
  | None -> [ entry_def ]
  | Some env -> (
    match Imap.find_opt (Reg.index r) env with
    | Some ds -> ds
    | None -> [ entry_def ])

(* Do two program points agree on where a register's value comes from?
   Equal reaching-definition sets mean no definition lies between the
   points on a path that reaches only one of them — the confirmation the
   dominating-check elision uses for its witness pairs.  (This is a
   necessary check, not a sufficient one: a definition on a branch
   between the points can reach both through a back edge.  The elision
   pass therefore gates on the available-checks dataflow and uses this
   only to corroborate the chosen witness.) *)
let same_defs t r ~at_a ~at_b =
  let a = List.sort_uniq compare (reaching_defs t at_a r) in
  let b = List.sort_uniq compare (reaching_defs t at_b r) in
  a = b

(* Serialization.  The per-block in-environments are the whole fixpoint:
   [analyze]'s final pass derives every per-instruction fact from them by
   replaying [transfer], and [import] repeats exactly that pass.  A
   block's in-environment is [before] at its first instruction (blocks
   always carry at least one). *)

let export t =
  List.map
    (fun (b : Cfg.block) ->
      let env =
        match Hashtbl.find_opt t.before b.Cfg.b_insns.(0).d_addr with
        | Some env -> env
        | None -> Imap.empty
      in
      (b.Cfg.b_addr, Imap.bindings env))
    (Cfg.fn_blocks t.fn)

let import ~ins (fn : Cfg.fn) =
  let before = Hashtbl.create 64 in
  let insn_of = Hashtbl.create 64 in
  List.iter
    (fun (addr, bindings) ->
      match Hashtbl.find_opt fn.Cfg.f_blocks addr with
      | None -> failwith "Defuse.import: unknown block"
      | Some b ->
        let env =
          ref
            (List.fold_left
               (fun m (r, defs) -> Imap.add r defs m)
               Imap.empty bindings)
        in
        Array.iter
          (fun (i : insn_info) ->
            Hashtbl.replace before i.d_addr !env;
            Hashtbl.replace insn_of i.d_addr i.d_insn;
            env := transfer i.d_addr i.d_insn !env)
          b.Cfg.b_insns)
    ins;
  { fn; before; insn_of }

let traces_to t addr r ~pred =
  let visited = Hashtbl.create 16 in
  let rec go addr r =
    List.exists
      (fun d ->
        if d = entry_def || Hashtbl.mem visited (d, Reg.index r) then false
        else begin
          Hashtbl.replace visited (d, Reg.index r) ();
          match Hashtbl.find_opt t.insn_of d with
          | None -> false
          | Some i ->
            pred i
            ||
            (* Follow register-to-register copies and arithmetic. *)
            (match i with
            | Insn.Mov (_, Insn.Reg src) -> go d src
            | Insn.Binop (_, rd, src) ->
              go d rd
              || (match src with Insn.Reg rs -> go d rs | Insn.Imm _ -> false)
            | Insn.Neg rd | Insn.Not rd -> go d rd
            | Insn.Lea (_, m) ->
              let regs =
                (match m.Insn.base with
                | Some (Insn.Breg b) -> [ b ]
                | Some Insn.Bpc | None -> [])
                @ match m.Insn.index with Some x -> [ x ] | None -> []
              in
              List.exists (go d) regs
            | _ -> false)
        end)
      (reaching_defs t addr r)
  in
  go addr r
