open Jt_isa
open Jt_cfg
open Jt_disasm.Disasm

type info = {
  s_entry : int;
  s_frame_size : int option;
  s_has_canary_pattern : bool;
  s_push_bytes : int;
}

let analyze (fn : Cfg.fn) =
  match Hashtbl.find_opt fn.Cfg.f_blocks fn.Cfg.f_entry with
  | None ->
    { s_entry = fn.Cfg.f_entry; s_frame_size = None; s_has_canary_pattern = false;
      s_push_bytes = 0 }
  | Some b ->
    let frame = ref None in
    let canary = ref false in
    let pushes = ref 0 in
    Array.iter
      (fun i ->
        match i.d_insn with
        | Insn.Binop (Insn.Sub, r, Insn.Imm n)
          when Reg.equal r Reg.sp && !frame = None ->
          frame := Some n
        | Insn.Push _ -> pushes := !pushes + 4
        | Insn.Load_canary _ -> canary := true
        | _ -> ())
      b.Cfg.b_insns;
    {
      s_entry = fn.Cfg.f_entry;
      s_frame_size = !frame;
      s_has_canary_pattern = !canary;
      s_push_bytes = !pushes;
    }

(* The frame reservation as entry-sp-relative byte offsets: everything
   the prologue claims below the entry stack pointer — the pushes plus
   the [sub sp, N] locals.  [None] when no standard prologue was found:
   callers must then treat nothing as proven in-frame. *)
let frame_span (i : info) =
  match i.s_frame_size with
  | None -> None
  | Some sz ->
    let reserved = i.s_push_bytes + sz in
    if reserved <= 0 then None else Some (-reserved, -1)
