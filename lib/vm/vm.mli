(** The simulated machine.

    A VM owns the memory, registers, flags, allocator and loader of one
    process, plus the cycle and instruction counters every experiment is
    measured with.  It can execute a program directly (the "native"
    baseline: {!run}) or serve as the substrate for a dynamic binary
    modifier, which drives execution itself through {!fetch},
    {!step_decoded} and {!advance_phase}. *)

open Jt_isa

type fault =
  | Decode_fault of int  (** undecodable bytes reached by the PC *)
  | Halted of int  (** a [halt] instruction (abnormal stop) at this PC *)
  | Out_of_fuel
  | Load_fault of string  (** loader/dlopen failure during execution *)

type status =
  | Running
  | Exited of int
  | Fault of fault
  | Aborted of string  (** stopped by a security tool's abort policy *)

type violation = { v_kind : string; v_addr : int; v_pc : int }
(** A security violation reported by an instrumentation tool.  Tools run
    in "recover" mode: violations are recorded and execution continues,
    like ASan's [halt_on_error=0], so that test cases with several bugs
    report each one. *)

type t = {
  mem : Jt_mem.Memory.t;
  loader : Jt_loader.Loader.t;
  alloc : Alloc.t;
  regs : int array;
  flags : Flags.state;
  mutable pc : int;
  mutable cycles : int;
  mutable icount : int;
  mutable status : status;
  out : Buffer.t;
  canary : int;
  mutable violations : violation list;  (** newest first *)
  mutable phases : int list;
  mutable jit_next : int;
  decode_cache : (int, Insn.t * int) Hashtbl.t;
  decode_pages : (int, int list ref) Hashtbl.t;
      (** 4KiB-page index over [decode_cache]: each entry is registered
          under every page its byte span overlaps, so {!flush_range}
          visits only affected pages.  Maintained by {!cache_decoded}. *)
  mutable flush_listeners : (int -> int -> unit) list;
  handles : (int, Jt_loader.Loader.loaded) Hashtbl.t;
  mutable next_handle : int;  (** monotonic dlopen handle allocator *)
  mutable input : int list;  (** remaining external input (read_int) *)
  syscall_hooks : (int, t -> unit) Hashtbl.t;
      (** per-number overrides consulted before the built-in syscall
          chain; see {!set_syscall_hook} *)
}

val set_input : t -> int list -> unit
(** Provide the program's external input stream, consumed by the
    [read_int] syscall. *)

val set_syscall_hook : t -> int -> (t -> unit) -> unit
(** Install (or replace) the handler for syscall number [n].  Hooks are
    consulted before the built-in chain — including its unknown-syscall
    fallback that clobbers [r0] — so statically emitted instrumentation
    ([Sysno.emit_site], [Sysno.emit_pin]) can give its encodings meaning
    without the VM knowing about them.  The hook runs at handler time:
    the PC has already advanced past the [syscall] instruction and its
    native cost is charged, so a hook may adjust both (set [pc], call
    {!charge} with a delta). *)

val make : registry:Jt_obj.Objfile.t list -> t
(** Create a VM with an empty process.  Register loader callbacks (via
    [Jt_loader.Loader.on_load (loader vm)]) before calling {!boot} to
    observe startup modules. *)

val boot : t -> main:string -> unit
(** Load the main module and its dependency closure, set up the stack,
    and queue the execution phases: each startup module's [_init], then
    the entry point.  The PC is left at the phase sentinel; {!run} (or a
    DBT driving the VM) starts from there. *)

val sentinel : int
(** The magic return address separating phases.  When the PC reaches it,
    call {!advance_phase}. *)

val jit_region : int * int
(** [(lo, hi)] bounds of the address range handed out by [mmap_code]:
    anything in it is dynamically generated code. *)

val advance_phase : t -> unit
(** Enter the next queued phase, or mark the program exited (with [r0])
    when none remain. *)

val get : t -> Reg.t -> int
val set : t -> Reg.t -> int -> unit

val fetch : t -> int -> (Insn.t * int) option
(** Decode (with caching) the instruction at an address. *)

val cache_decoded : t -> int -> Insn.t * int -> unit
(** Insert a pre-decoded instruction into the decode cache, registering
    it in the page index ({!fetch} goes through this; exposed for tools
    that pre-decode). *)

val flush_range : t -> int -> int -> unit
(** Programmatic icache flush: invalidate every decode-cache entry whose
    byte span overlaps [[start, start+len)] and notify flush listeners.
    The [cache_flush] syscall is routed through this. *)

val step_decoded : t -> at:int -> Insn.t -> int -> unit
(** Execute one already-decoded instruction of length [len] located at
    [at] (normally [at = pc]), charging its native cost and updating the
    PC.  Raises nothing: faults set {!status}. *)

val charge : t -> int -> unit
(** Add instrumentation cycles. *)

val eval_mem : t -> next_pc:int -> Insn.mem -> int
(** Effective address of a memory operand in the current machine state
    ([next_pc] is the address of the following instruction, the base for
    PC-relative operands).  Used by instrumentation to reproduce the
    address an access is about to touch. *)

val report_violation : t -> kind:string -> addr:int -> unit

val on_cache_flush : t -> (int -> int -> unit) -> unit
(** Subscribe to [cache_flush] syscalls (start, length): a DBT must
    invalidate affected code-cache blocks. *)

val run : ?fuel:int -> t -> unit
(** Interpret until exit or fault ("native" execution).  [fuel] bounds the
    executed instruction count (default 200 million). *)

val output : t -> string
(** The program's output stream so far. *)

exception Security_abort of string
(** Tools may raise this from instrumentation actions to model
    abort-on-violation policies; {!step_decoded} does not catch it. *)

(** {1 Convenience} *)

type result = {
  r_status : status;
  r_cycles : int;
  r_icount : int;
  r_output : string;
  r_violations : violation list;  (** oldest first *)
}

val result : t -> result

val run_native : ?fuel:int -> registry:Jt_obj.Objfile.t list -> main:string -> unit -> result
(** Build a fresh VM, boot [main] and interpret it natively. *)

val pp_status : Format.formatter -> status -> unit
