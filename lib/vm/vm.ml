open Jt_isa

type fault =
  | Decode_fault of int
  | Halted of int
  | Out_of_fuel
  | Load_fault of string

type status = Running | Exited of int | Fault of fault | Aborted of string

type violation = { v_kind : string; v_addr : int; v_pc : int }

type t = {
  mem : Jt_mem.Memory.t;
  loader : Jt_loader.Loader.t;
  alloc : Alloc.t;
  regs : int array;
  flags : Flags.state;
  mutable pc : int;
  mutable cycles : int;
  mutable icount : int;
  mutable status : status;
  out : Buffer.t;
  canary : int;
  mutable violations : violation list;
  mutable phases : int list;
  mutable jit_next : int;
  decode_cache : (int, Insn.t * int) Hashtbl.t;
  decode_pages : (int, int list ref) Hashtbl.t;
  mutable flush_listeners : (int -> int -> unit) list;
  handles : (int, Jt_loader.Loader.loaded) Hashtbl.t;
  mutable next_handle : int;
  mutable input : int list;
  syscall_hooks : (int, t -> unit) Hashtbl.t;
}

exception Security_abort of string

let sentinel = 0xFFFF_FF00
let stack_top = 0x7F00_0000
let jit_base = 0x6000_0000
let jit_region = (jit_base, 0x7000_0000)

let make ~registry =
  let mem = Jt_mem.Memory.create () in
  let loader = Jt_loader.Loader.create ~mem ~registry in
  {
    mem;
    loader;
    alloc = Alloc.create ();
    regs = Array.make Reg.count 0;
    flags = Flags.create ();
    pc = sentinel;
    cycles = 0;
    icount = 0;
    status = Running;
    out = Buffer.create 256;
    canary = 0x5A5A_A5A5;
    violations = [];
    phases = [];
    jit_next = jit_base;
    decode_cache = Hashtbl.create 4096;
    decode_pages = Hashtbl.create 256;
    flush_listeners = [];
    handles = Hashtbl.create 8;
    next_handle = 1;
    input = [];
    syscall_hooks = Hashtbl.create 4;
  }

let set_input t values = t.input <- values

let set_syscall_hook t n f = Hashtbl.replace t.syscall_hooks n f

let get t r = t.regs.(Reg.index r)
let set t r v = t.regs.(Reg.index r) <- Word.of_int v

let boot t ~main =
  (match Jt_loader.Loader.load_main t.loader main with
  | (_ : Jt_loader.Loader.loaded) -> ()
  | exception Jt_loader.Loader.Load_error e -> t.status <- Fault (Load_fault e));
  if t.status = Running then begin
    set t Reg.sp stack_top;
    t.phases <-
      Jt_loader.Loader.init_entries t.loader
      @ [ Jt_loader.Loader.entry_point t.loader ];
    t.pc <- sentinel
  end

let push t v =
  let sp = Word.sub (get t Reg.sp) 4 in
  set t Reg.sp sp;
  Jt_mem.Memory.write32 t.mem sp v

let pop t =
  let sp = get t Reg.sp in
  let v = Jt_mem.Memory.read32 t.mem sp in
  set t Reg.sp (Word.add sp 4);
  v

let advance_phase t =
  match t.phases with
  | next :: rest ->
    t.phases <- rest;
    push t sentinel;
    t.pc <- next
  | [] -> t.status <- Exited (get t Reg.r0)

(* The decode cache is bucketed by 4KiB page: every entry is registered
   under each page its byte span [addr, addr+len) overlaps, so a range
   invalidation only visits the affected pages instead of folding over
   the whole table. *)
let page_shift = 12

let cache_decoded t addr ((_, len) as v) =
  Hashtbl.replace t.decode_cache addr v;
  let span = max len 1 in
  for p = addr asr page_shift to (addr + span - 1) asr page_shift do
    let b =
      match Hashtbl.find_opt t.decode_pages p with
      | Some b -> b
      | None ->
        let b = ref [] in
        Hashtbl.replace t.decode_pages p b;
        b
    in
    if not (List.mem addr !b) then b := addr :: !b
  done

let fetch t addr =
  match Hashtbl.find_opt t.decode_cache addr with
  | Some v -> Some v
  | None -> (
    match Decode.instr ~read:(fun a -> Jt_mem.Memory.read8 t.mem a) ~at:addr with
    | Some v ->
      cache_decoded t addr v;
      Some v
    | None -> None)

let charge t c = t.cycles <- t.cycles + c

let report_violation t ~kind ~addr =
  t.violations <- { v_kind = kind; v_addr = addr; v_pc = t.pc } :: t.violations;
  if Jt_trace.Trace.is_enabled () then
    Jt_trace.Trace.emit
      (Jt_trace.Trace.Violation
         {
           kind;
           addr;
           pc = t.pc;
           vmodule =
             (match Jt_loader.Loader.module_at t.loader t.pc with
             | Some l -> l.Jt_loader.Loader.lmod.Jt_obj.Objfile.name
             | None -> "?");
           origin = Jt_trace.Trace.exec_origin ();
         })

let on_cache_flush t f = t.flush_listeners <- f :: t.flush_listeners

(* ---- operand evaluation ---- *)

let eval_operand t = function Insn.Reg r -> get t r | Insn.Imm v -> v

let eval_mem t ~next_pc (m : Insn.mem) =
  let base =
    match m.base with
    | Some (Insn.Breg r) -> get t r
    | Some Insn.Bpc -> next_pc
    | None -> 0
  in
  let index = match m.index with Some r -> get t r * m.scale | None -> 0 in
  Word.of_int (base + index + m.disp)

(* ---- flag computation ---- *)

let sign w = w land 0x8000_0000 <> 0

let flags_add t a b r =
  Flags.set_arith t.flags ~result:r
    ~carry:(a + b > Word.mask)
    ~overflow:(sign a = sign b && sign r <> sign a)

let flags_sub t a b r =
  Flags.set_arith t.flags ~result:r ~carry:(a < b)
    ~overflow:(sign a <> sign b && sign r <> sign a)

let eval_cond t (c : Insn.cond) =
  let f = t.flags in
  match c with
  | Insn.Eq -> f.zf
  | Ne -> not f.zf
  | Lt -> f.sf <> f.of_
  | Ge -> f.sf = f.of_
  | Le -> f.zf || f.sf <> f.of_
  | Gt -> (not f.zf) && f.sf = f.of_
  | Ult -> f.cf
  | Uge -> not f.cf
  | Ule -> f.cf || f.zf
  | Ugt -> (not f.cf) && not f.zf

(* ---- syscalls ---- *)

(* Invalidate every cached instruction whose byte span [k, k+len)
   actually overlaps [start, start+len), visiting only the page buckets
   the flushed range touches.  (The old heuristic dropped entries with
   [k >= start - 16], which both over-invalidated nearby non-overlapping
   entries and would let an instruction longer than 16 bytes survive with
   stale bytes.) *)
let flush_range t start len =
  if Jt_trace.Trace.is_enabled () then
    Jt_trace.Trace.emit (Jt_trace.Trace.Flush_range { start; len });
  (if len > 0 then begin
     let c = Jt_metrics.Metrics.Counters.current () in
     let doomed = ref [] in
     for p = start asr page_shift to (start + len - 1) asr page_shift do
       match Hashtbl.find_opt t.decode_pages p with
       | None -> ()
       | Some b ->
         List.iter
           (fun k ->
             c.c_flush_visits <- c.c_flush_visits + 1;
             match Hashtbl.find_opt t.decode_cache k with
             | Some (_, ilen) when k < start + len && k + max ilen 1 > start ->
               doomed := (k, ilen) :: !doomed
             | Some _ | None -> ())
           !b
     done;
     List.iter
       (fun (k, ilen) ->
         (* an entry spanning two flushed pages appears twice *)
         if Hashtbl.mem t.decode_cache k then begin
           c.c_flush_drops <- c.c_flush_drops + 1;
           Hashtbl.remove t.decode_cache k;
           for q = k asr page_shift to (k + max ilen 1 - 1) asr page_shift do
             match Hashtbl.find_opt t.decode_pages q with
             | Some b -> b := List.filter (fun a -> a <> k) !b
             | None -> ()
           done
         end)
       !doomed
   end);
  List.iter (fun f -> f start len) t.flush_listeners

let rec do_syscall t n =
  match Hashtbl.find_opt t.syscall_hooks n with
  | Some f -> f t
  | None -> do_builtin_syscall t n

and do_builtin_syscall t n =
  let a0 = get t Reg.r0 and a1 = get t Reg.r1 in
  if n = Sysno.exit_ then t.status <- Exited a0
  else if n = Sysno.write_int then begin
    Buffer.add_string t.out (string_of_int (Word.to_signed a0));
    Buffer.add_char t.out '\n'
  end
  else if n = Sysno.write_ch then Buffer.add_char t.out (Char.chr (a0 land 0xFF))
  else if n = Sysno.malloc then set t Reg.r0 (Alloc.malloc t.alloc a0)
  else if n = Sysno.free then begin
    Alloc.free t.alloc a0;
    set t Reg.r0 0
  end
  else if n = Sysno.dlopen then begin
    let name = Jt_mem.Memory.read_cstring t.mem a0 in
    match Jt_loader.Loader.dlopen t.loader name with
    | l ->
      (* Monotonic handle IDs: sizing off [Hashtbl.length] would reuse a
         live ID after a dlclose and silently alias another module. *)
      let h = t.next_handle in
      t.next_handle <- h + 1;
      Hashtbl.replace t.handles h l;
      if Jt_trace.Trace.is_enabled () then
        Jt_trace.Trace.emit (Jt_trace.Trace.Dlopen { name; handle = h });
      set t Reg.r0 h
    | exception Jt_loader.Loader.Load_error e -> t.status <- Fault (Load_fault e)
  end
  else if n = Sysno.dlsym then begin
    let sym = Jt_mem.Memory.read_cstring t.mem a1 in
    match Hashtbl.find_opt t.handles a0 with
    | None -> set t Reg.r0 0
    | Some l -> (
      match Jt_obj.Objfile.find_export l.lmod sym with
      | Some s -> set t Reg.r0 (Jt_loader.Loader.runtime_addr l s.vaddr)
      | None -> set t Reg.r0 0)
  end
  else if n = Sysno.mmap_code then begin
    let size = max a0 16 in
    let r = t.jit_next in
    t.jit_next <- (r + size + 0xFFF) land lnot 0xFFF;
    set t Reg.r0 r
  end
  else if n = Sysno.resolve then begin
    let sp = get t Reg.sp in
    let index = Jt_mem.Memory.read32 t.mem sp in
    let ret_addr = Jt_mem.Memory.read32 t.mem (sp + 4) in
    match
      Jt_loader.Loader.resolve_plt_index t.loader ~caller_pc:ret_addr ~index
    with
    | target -> Jt_mem.Memory.write32 t.mem sp target
    | exception Jt_loader.Loader.Load_error e -> t.status <- Fault (Load_fault e)
  end
  else if n = Sysno.cache_flush then flush_range t a0 a1
  else if n = Sysno.dlclose then begin
    match Hashtbl.find_opt t.handles a0 with
    | None -> set t Reg.r0 0
    | Some l ->
      let name = l.lmod.Jt_obj.Objfile.name in
      let ok = Jt_loader.Loader.dlclose t.loader name in
      if Jt_trace.Trace.is_enabled () then
        Jt_trace.Trace.emit (Jt_trace.Trace.Dlclose { name; ok });
      if ok then begin
        Hashtbl.remove t.handles a0;
        (* retire translated code for the whole module range *)
        List.iter
          (fun (s : Jt_obj.Section.t) ->
            if s.is_code then
              flush_range t
                (Jt_loader.Loader.runtime_addr l s.vaddr)
                (Jt_obj.Section.size s))
          l.lmod.sections;
        set t Reg.r0 1
      end
      else set t Reg.r0 0
  end
  else if n = Sysno.calloc then begin
    let addr = Alloc.malloc t.alloc a0 in
    for i = 0 to a0 - 1 do
      Jt_mem.Memory.write8 t.mem (addr + i) 0
    done;
    set t Reg.r0 addr
  end
  else if n = Sysno.realloc then begin
    if a0 = 0 then set t Reg.r0 (Alloc.malloc t.alloc a1)
    else begin
      let old_size =
        match Alloc.block_of t.alloc a0 with
        | Some (base, size, true) when base = a0 -> size
        | Some _ | None -> 0
      in
      let fresh = Alloc.malloc t.alloc a1 in
      for i = 0 to min old_size a1 - 1 do
        Jt_mem.Memory.write8 t.mem (fresh + i) (Jt_mem.Memory.read8 t.mem (a0 + i))
      done;
      Alloc.free t.alloc a0;
      set t Reg.r0 fresh
    end
  end
  else if n = Sysno.read_int then begin
    match t.input with
    | [] -> set t Reg.r0 0
    | v :: rest ->
      t.input <- rest;
      set t Reg.r0 v
  end
  else (* unknown syscall: returns -1 *)
    set t Reg.r0 (Word.of_int (-1))

(* ---- execution ---- *)

let step_decoded t ~at (i : Insn.t) len =
  let next_pc = at + len in
  t.icount <- t.icount + 1;
  t.cycles <- t.cycles + Cost.insn i;
  t.pc <- next_pc;
  match i with
  | Insn.Nop -> ()
  | Halt -> t.status <- Fault (Halted at)
  | Mov (rd, src) -> set t rd (eval_operand t src)
  | Lea (rd, m) -> set t rd (eval_mem t ~next_pc m)
  | Load (w, rd, m) ->
    let a = eval_mem t ~next_pc m in
    set t rd (Jt_mem.Memory.read t.mem a ~width:(Insn.width_bytes w))
  | Store (w, m, src) ->
    let a = eval_mem t ~next_pc m in
    Jt_mem.Memory.write t.mem a ~width:(Insn.width_bytes w) (eval_operand t src)
  | Binop (op, rd, src) -> (
    let a = get t rd and b = eval_operand t src in
    match op with
    | Insn.Add ->
      let r = Word.add a b in
      set t rd r;
      flags_add t a b r
    | Sub ->
      let r = Word.sub a b in
      set t rd r;
      flags_sub t a b r
    | And ->
      let r = Word.logand a b in
      set t rd r;
      Flags.set_logic t.flags ~result:r
    | Or ->
      let r = Word.logor a b in
      set t rd r;
      Flags.set_logic t.flags ~result:r
    | Xor ->
      let r = Word.logxor a b in
      set t rd r;
      Flags.set_logic t.flags ~result:r
    | Shl ->
      let r = Word.shl a b in
      set t rd r;
      Flags.set_logic t.flags ~result:r
    | Shr ->
      let r = Word.shr a b in
      set t rd r;
      Flags.set_logic t.flags ~result:r
    | Sar ->
      let r = Word.sar a b in
      set t rd r;
      Flags.set_logic t.flags ~result:r
    | Mul ->
      let r = Word.mul a b in
      set t rd r;
      Flags.set_logic t.flags ~result:r)
  | Neg r ->
    let a = get t r in
    let v = Word.neg a in
    set t r v;
    flags_sub t 0 a v
  | Not r ->
    set t r (Word.lognot (get t r))
    (* x86 NOT does not affect flags *)
  | Cmp (ra, src) ->
    let a = get t ra and b = eval_operand t src in
    flags_sub t a b (Word.sub a b)
  | Test (ra, src) ->
    let a = get t ra and b = eval_operand t src in
    Flags.set_logic t.flags ~result:(Word.logand a b)
  | Push src -> push t (eval_operand t src)
  | Pop rd -> set t rd (pop t)
  | Jmp target -> t.pc <- target
  | Jcc (c, target) -> if eval_cond t c then t.pc <- target
  | Jmp_ind (Some r, _) -> t.pc <- get t r
  | Jmp_ind (None, Some m) -> t.pc <- Jt_mem.Memory.read32 t.mem (eval_mem t ~next_pc m)
  | Jmp_ind (None, None) -> t.status <- Fault (Decode_fault at)
  | Call target ->
    push t next_pc;
    t.pc <- target
  | Call_ind (Some r, _) ->
    push t next_pc;
    t.pc <- get t r
  | Call_ind (None, Some m) ->
    let target = Jt_mem.Memory.read32 t.mem (eval_mem t ~next_pc m) in
    push t next_pc;
    t.pc <- target
  | Call_ind (None, None) -> t.status <- Fault (Decode_fault at)
  | Ret -> t.pc <- pop t
  | Load_canary rd -> set t rd t.canary
  | Syscall n -> do_syscall t n

let default_fuel = 200_000_000

let run ?(fuel = default_fuel) t =
  let budget = t.icount + fuel in
  while t.status = Running do
    if t.icount >= budget then t.status <- Fault Out_of_fuel
    else if t.pc = sentinel then advance_phase t
    else
      match fetch t t.pc with
      | Some (i, len) -> step_decoded t ~at:t.pc i len
      | None -> t.status <- Fault (Decode_fault t.pc)
  done

let output t = Buffer.contents t.out

type result = {
  r_status : status;
  r_cycles : int;
  r_icount : int;
  r_output : string;
  r_violations : violation list;
}

let result t =
  {
    r_status = t.status;
    r_cycles = t.cycles;
    r_icount = t.icount;
    r_output = output t;
    r_violations = List.rev t.violations;
  }

let run_native ?fuel ~registry ~main () =
  let t = make ~registry in
  boot t ~main;
  if t.status = Running then run ?fuel t;
  result t

let pp_status ppf = function
  | Running -> Format.pp_print_string ppf "running"
  | Exited n -> Format.fprintf ppf "exited(%d)" n
  | Fault (Decode_fault a) -> Format.fprintf ppf "decode fault at %a" Word.pp a
  | Fault (Halted a) -> Format.fprintf ppf "halted at %a" Word.pp a
  | Fault Out_of_fuel -> Format.pp_print_string ppf "out of fuel"
  | Fault (Load_fault e) -> Format.fprintf ppf "load fault: %s" e
  | Aborted why -> Format.fprintf ppf "aborted: %s" why
