(* Why a [free] call is rejected: the two classes need distinct verdicts
   downstream (CWE-415 double free vs. an invalid/interior pointer). *)
type bad_free_kind = Double_free | Invalid_free

type event =
  | Ev_alloc of { id : int; addr : int; size : int; redzone : int }
  | Ev_free of { id : int; addr : int; size : int }
  | Ev_unquarantine of { id : int; addr : int; size : int }
  | Ev_bad_free of { addr : int; kind : bad_free_kind }

type block = {
  b_id : int;
  b_addr : int;
  b_size : int;
  b_redzone : int;  (* redzone in effect when the block was carved *)
  mutable b_live : bool;
}

type t = {
  mutable brk : int;
  blocks : (int, block) Hashtbl.t;
  mutable order : block list;
  mutable redzone : int;
  mutable listeners : (event -> unit) list;
  mutable next_id : int;
  quarantine : block Queue.t;
  mutable quarantine_bytes : int;
  mutable quarantine_capacity : int;
  reuse : bool;
  (* retired (drained) footprints available for reuse, keyed by
     (user size, redzone): identical layout, so handing one out is
     indistinguishable from a bump allocation at that address *)
  free_slots : (int * int, int list ref) Hashtbl.t;
}

let default_base = 0x5000_0000
let default_quarantine_capacity = 1 lsl 20

let create ?(base = default_base) ?(reuse = false)
    ?(quarantine_capacity = default_quarantine_capacity) () =
  {
    brk = base;
    blocks = Hashtbl.create 64;
    order = [];
    redzone = 0;
    listeners = [];
    next_id = 1;
    quarantine = Queue.create ();
    quarantine_bytes = 0;
    quarantine_capacity;
    reuse;
    free_slots = Hashtbl.create 8;
  }

let set_redzone t n = t.redzone <- n

let set_quarantine_capacity t n =
  t.quarantine_capacity <- max 0 n

let quarantined_bytes t = t.quarantine_bytes
let subscribe t f = t.listeners <- f :: t.listeners
let fire t ev = List.iter (fun f -> f ev) t.listeners

let align8 x = (x + 7) land lnot 7

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let register t b =
  Hashtbl.replace t.blocks b.b_addr b;
  t.order <- b :: t.order;
  fire t (Ev_alloc { id = b.b_id; addr = b.b_addr; size = b.b_size; redzone = b.b_redzone })

(* Retire quarantined blocks oldest-first until the quarantine fits its
   byte budget again.  A retired footprint becomes reusable (when the
   allocator was created with [reuse]); its shadow bookkeeping is the
   subscribers' business — they see [Ev_unquarantine]. *)
let drain t =
  while t.quarantine_bytes > t.quarantine_capacity do
    let b = Queue.pop t.quarantine in
    t.quarantine_bytes <- t.quarantine_bytes - b.b_size;
    if t.reuse then begin
      let key = (b.b_size, b.b_redzone) in
      let slots =
        match Hashtbl.find_opt t.free_slots key with
        | Some s -> s
        | None ->
          let s = ref [] in
          Hashtbl.replace t.free_slots key s;
          s
      in
      slots := b.b_addr :: !slots
    end;
    fire t (Ev_unquarantine { id = b.b_id; addr = b.b_addr; size = b.b_size })
  done

let malloc t size =
  let size = max size 0 in
  let addr =
    match
      if t.reuse then Hashtbl.find_opt t.free_slots (size, t.redzone) else None
    with
    | Some ({ contents = a :: rest } as slots) ->
      slots := rest;
      a
    | Some _ | None ->
      let a = t.brk + t.redzone in
      t.brk <- align8 (a + size + t.redzone);
      a
  in
  let b =
    { b_id = fresh_id t; b_addr = addr; b_size = size; b_redzone = t.redzone;
      b_live = true }
  in
  register t b;
  addr

let free t addr =
  match Hashtbl.find_opt t.blocks addr with
  | Some b when b.b_live ->
    b.b_live <- false;
    Queue.push b t.quarantine;
    t.quarantine_bytes <- t.quarantine_bytes + b.b_size;
    fire t (Ev_free { id = b.b_id; addr; size = b.b_size });
    drain t
  | Some _ -> fire t (Ev_bad_free { addr; kind = Double_free })
  | None -> fire t (Ev_bad_free { addr; kind = Invalid_free })

let block_of t addr =
  let found = ref None in
  Hashtbl.iter
    (fun _ b ->
      if addr >= b.b_addr && addr < b.b_addr + max b.b_size 1 then
        found := Some (b.b_addr, b.b_size, b.b_live))
    t.blocks;
  !found

let live_blocks t =
  List.filter_map
    (fun b -> if b.b_live then Some (b.b_addr, b.b_size) else None)
    t.order
