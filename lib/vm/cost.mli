(** The cycle model.

    All timing constants of the simulation live here, so the calibration
    of every experiment is in one place.  Figures in the paper are ratios
    of instrumented to native cycle counts; the constants below were
    chosen so the *shape* of those ratios matches the paper (who wins, by
    roughly what factor), which is all a simulated substrate can honestly
    promise. *)

val insn : Jt_isa.Insn.t -> int
(** Native execution cost of one instruction. *)

(** {1 Dynamic binary translation engine (DynamoRIO analog)} *)

val dbt_translate_block : int
(** Fixed cost of building one code-cache block. *)

val dbt_translate_insn : int
(** Added translation cost per instruction in the block. *)

val dbt_indirect_lookup : int
(** Cost of the indirect-branch target lookup paid at every executed
    indirect jump, indirect call and return under the DBT (direct
    branches are linked and cost nothing extra). *)

val dbt_ibl_hit : int
(** Cost of an indirect transfer resolved by a per-site inline cache
    (last-target or associative way): a compare-and-jump instead of the
    full [dbt_indirect_lookup] hash probe. *)

val dbt_clean_call : int
(** Cost of a clean call: full register + flag save/restore around an
    out-of-line instrumentation routine. *)

val spill_reg : int
(** Save + restore of one register around inlined instrumentation. *)

val save_restore_flags : int
(** Save + restore of the arithmetic flags around inlined
    instrumentation. *)

(** {1 Address sanitizer} *)

val asan_check : int
(** Inlined shadow-memory check (shadow load, compare, branch). *)

val asan_canary_op : int
(** Poisoning or unpoisoning a canary slot. *)

val asan_alloc_hook : int
(** Redzone poisoning work at malloc/free. *)

(** {1 Interpretive (Valgrind-like) execution} *)

val valgrind_per_insn : int
(** Dispatch/IR overhead per executed instruction. *)

val valgrind_mem_check : int
(** Shadow check per memory access. *)

(** {1 Control-flow integrity} *)

val cfi_forward_check : int
(** Inlined hash-table membership test at an indirect call or jump. *)

val cfi_shadow_push : int
(** Shadow-stack push at a call. *)

val cfi_shadow_pop : int
(** Shadow-stack pop + compare at a return. *)

val bincfi_translation : int
(** BinCFI-style address-translation lookup at an indirect transfer
    (static rewriting replaces targets with table lookups). *)

val lockdown_per_block : int
(** Lockdown's lightweight translator overhead per executed block. *)

val lockdown_indirect : int
(** Lockdown's per-indirect-transfer check cost. *)
