open Jt_isa

let insn : Insn.t -> int = function
  | Insn.Nop -> 1
  | Halt -> 1
  | Mov _ | Lea _ -> 1
  | Load _ -> 2
  | Store _ -> 2
  | Binop (Mul, _, _) -> 3
  | Binop _ -> 1
  | Neg _ | Not _ -> 1
  | Cmp _ | Test _ -> 1
  | Push _ | Pop _ -> 2
  | Jmp _ | Jcc _ -> 1
  | Jmp_ind _ -> 2
  | Call _ | Call_ind _ -> 2
  | Ret -> 2
  | Load_canary _ -> 1
  | Syscall _ -> 20

let dbt_translate_block = 60
let dbt_translate_insn = 12
let dbt_indirect_lookup = 8
let dbt_ibl_hit = 2
let dbt_clean_call = 40
let spill_reg = 1
let save_restore_flags = 2

let asan_check = 13
let asan_canary_op = 3
let asan_alloc_hook = 20

let valgrind_per_insn = 9
let valgrind_mem_check = 16

let cfi_forward_check = 18
let cfi_shadow_push = 4
let cfi_shadow_pop = 6
let bincfi_translation = 14
let lockdown_per_block = 0
let lockdown_indirect = 4
