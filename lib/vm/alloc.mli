(** The heap allocator behind the [malloc]/[free] syscalls.

    A bump allocator with a freed-block quarantine.  Addresses are never
    reused while a block sits in quarantine; the quarantine is a FIFO
    bounded by a byte budget, and only allocators created with
    [~reuse:true] ever hand a retired footprint back out.  Every block
    carries a monotonically increasing allocation ID so tools can tell
    reallocation at a recycled address apart from the original lifetime.
    Sanitizers interpose on it the way LLVM ASan's runtime replaces the
    allocator via LD_PRELOAD: by configuring redzone padding and
    subscribing to allocation events. *)

type bad_free_kind =
  | Double_free  (** [free] of a block that was already freed. *)
  | Invalid_free
      (** [free] of an address that was never a block base (wild or
          interior pointer). *)

type event =
  | Ev_alloc of { id : int; addr : int; size : int; redzone : int }
  | Ev_free of { id : int; addr : int; size : int }
  | Ev_unquarantine of { id : int; addr : int; size : int }
      (** The block left quarantine: its footprint may be recycled by a
          future [malloc] (reuse mode) and tools should drop any per-ID
          bookkeeping for it. *)
  | Ev_bad_free of { addr : int; kind : bad_free_kind }

type t

val default_base : int
val default_quarantine_capacity : int

val create :
  ?base:int -> ?reuse:bool -> ?quarantine_capacity:int -> unit -> t
(** [base] defaults to the conventional heap start, [0x5000_0000].
    [reuse] (default [false]) lets [malloc] recycle footprints retired
    from quarantine; [quarantine_capacity] (default 1 MiB) bounds the
    total user bytes held in quarantine before the oldest blocks are
    retired. *)

val set_redzone : t -> int -> unit
(** Padding placed before and after every subsequent block. *)

val set_quarantine_capacity : t -> int -> unit
val quarantined_bytes : t -> int

val subscribe : t -> (event -> unit) -> unit

val malloc : t -> int -> int
(** Returns the user address of a fresh block ([size] >= 0). *)

val free : t -> int -> unit

val block_of : t -> int -> (int * int * bool) option
(** [block_of t addr]: the [(base, size, live)] of the block whose user
    range contains [addr], if any (redzones excluded). *)

val live_blocks : t -> (int * int) list
(** [(addr, size)] of blocks not yet freed. *)
